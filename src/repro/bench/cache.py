"""Workload/database build cache, keyed by content hashes.

Building a sweep cell's inputs is expensive relative to running it: the
YCSB generator walks a multi-million-record Zipfian domain and the TPC-C
generator instantiates the full five-template mix, then both apply the
runtime-skew and I/O extensions.  The sequential harness amortised that
by sharing one workload across the systems of a sweep point; the
parallel executor runs those systems as independent cells, so this cache
restores (and extends) the sharing:

* an **in-process memo** (small LRU) returns the same built ``Workload``
  object to every cell of a worker that asks for the same generation
  config — exactly the object sharing the sequential path had;
* an optional **disk layer** under ``<cache-dir>/workloads/`` pickles
  built workloads so concurrent workers and resumed runs skip the
  build entirely.

Keys come from :func:`repro.common.hashing.config_hash` over the full
generation config (generator config, bundle size, experiment extensions,
seed), so any field change — however small — misses the cache instead of
silently reusing a stale build.  Cached builds are bit-identical to
fresh ones: generation is deterministic in the seed, and pickling
round-trips every transaction field.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..common.hashing import config_hash
from ..txn.workload import Workload

#: Workloads kept alive per process; sweeps have strong locality (all
#: systems x seeds of one point reuse one build), so a handful suffices.
MEMO_SLOTS = 8

#: Bump to invalidate on-disk workload pickles when generation changes
#: in a way the config hash cannot see (e.g. generator algorithm edits).
DISK_FORMAT = "repro.workload/1"


def workload_key(kind: str, gen_config, bundle: int, exp, seed: int) -> str:
    """Content hash identifying one fully-extended workload build."""
    return config_hash({
        "format": DISK_FORMAT,
        "kind": kind,
        "gen": gen_config,
        "bundle": bundle,
        "exp": exp,
        "seed": seed,
    })


@dataclass
class WorkloadCache:
    """Two-level (memo + optional disk) cache of built workloads."""

    cache_dir: Optional[Path] = None
    memo_slots: int = MEMO_SLOTS
    _memo: "OrderedDict[str, Workload]" = field(default_factory=OrderedDict)
    #: Build/hit counters, exposed for tests and the executor's report.
    builds: int = 0
    memo_hits: int = 0
    disk_hits: int = 0

    def get_or_build(self, key: str, builder: Callable[[], Workload]) -> Workload:
        """The workload for ``key``, from memo, disk, or a fresh build."""
        got = self._memo.get(key)
        if got is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return got
        w = self._load_disk(key)
        if w is not None:
            self.disk_hits += 1
        else:
            w = builder()
            self.builds += 1
            self._store_disk(key, w)
        self._memo[key] = w
        while len(self._memo) > self.memo_slots:
            self._memo.popitem(last=False)
        return w

    # -- disk layer ---------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / "workloads" / f"{key}.pkl"

    def _load_disk(self, key: str) -> Optional[Workload]:
        path = self._path(key)
        if path is None or not path.is_file():
            return None
        try:
            with open(path, "rb") as f:
                w = pickle.load(f)
        except Exception:
            return None  # corrupt/partial file: rebuild and overwrite
        return w if isinstance(w, Workload) else None

    def _store_disk(self, key: str, workload: Workload) -> None:
        path = self._path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish so a concurrent reader never sees a torn pickle.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(workload, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


#: The process-wide cache the workload factories route through.  Workers
#: of the parallel executor re-point it at the run's --cache-dir.
_ACTIVE = WorkloadCache()


def active() -> WorkloadCache:
    return _ACTIVE


def configure(cache_dir=None) -> WorkloadCache:
    """Install a fresh process-wide cache (optionally disk-backed)."""
    global _ACTIVE
    _ACTIVE = WorkloadCache(cache_dir=Path(cache_dir) if cache_dir else None)
    return _ACTIVE


def cached_workload(kind: str, gen_config, bundle: int, exp, seed: int,
                    builder: Callable[[], Workload]) -> Workload:
    """Route one workload build through the process-wide cache."""
    key = workload_key(kind, gen_config, bundle, exp, seed)
    return _ACTIVE.get_or_build(key, builder)
