"""repro — TSKD: Transaction Scheduling, from Conflicts to Runtime Conflicts.

A full reproduction of Cao, Fan, Ou, Xie & Zhao, SIGMOD 2023
(DOI 10.1145/3603164): the TSKD transaction-scheduling/deferment tool, the
partitioners and CC protocols it is evaluated against, a discrete-event
multicore engine standing in for DBx1000, and the TPC-C / YCSB workloads
with the paper's runtime-skew and I/O-latency extensions.

Quick start::

    from repro import (TSKD, ExperimentConfig, SimConfig, YcsbConfig,
                       YcsbGenerator, run_system)

    workload = YcsbGenerator(YcsbConfig(theta=0.8), seed=1).make_workload(2000)
    exp = ExperimentConfig(sim=SimConfig(num_threads=8))
    baseline = run_system(workload, "dbcc", exp)
    ours = run_system(workload, TSKD.instance("CC"), exp)
    print(baseline.summary())
    print(ours.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .bench.runner import engine_of, run_system, system_name
from .bench.workloads import (
    TpccGenerator,
    YcsbGenerator,
    apply_io_latency,
    apply_runtime_skew,
)
from .cc import PROTOCOLS, CCProtocol, make_protocol
from .common import (
    CYCLES_PER_SECOND,
    TSDEFER_DISABLED,
    ExperimentConfig,
    IoLatencyConfig,
    ReproError,
    Rng,
    RunResult,
    RuntimeSkewConfig,
    SimConfig,
    TpccConfig,
    TsDeferConfig,
    YcsbConfig,
)
from .core import (
    TSKD,
    DependencySet,
    ExecutionPlan,
    ProgressTable,
    Schedule,
    TsDefer,
    TsPar,
    tsgen,
    tsgen_from_scratch,
    tune_tsdefer,
)
from .partition import (
    PARTITIONERS,
    HorticulturePartitioner,
    PartitionPlan,
    SchismPartitioner,
    StrifePartitioner,
    extract_residual,
    make_partitioner,
)
from .sim import (
    MulticoreEngine,
    assert_serializable,
    assert_snapshot_consistent,
    is_serializable,
    warm_up_history,
)
from .storage import Database, Table
from .common.config import ycsb_core_workload
from .txn import (
    ConflictGraph,
    HistoryCostModel,
    IsolationLevel,
    Operation,
    OpKind,
    Transaction,
    Workload,
    in_conflict,
    load_workload,
    make_transaction,
    read,
    save_workload,
    workload_from,
    write,
)

__version__ = "1.0.0"

__all__ = [
    "CYCLES_PER_SECOND",
    "CCProtocol",
    "ConflictGraph",
    "Database",
    "DependencySet",
    "ExecutionPlan",
    "ExperimentConfig",
    "HistoryCostModel",
    "HorticulturePartitioner",
    "IoLatencyConfig",
    "IsolationLevel",
    "MulticoreEngine",
    "OpKind",
    "Operation",
    "PARTITIONERS",
    "PROTOCOLS",
    "PartitionPlan",
    "ProgressTable",
    "ReproError",
    "Rng",
    "RunResult",
    "RuntimeSkewConfig",
    "Schedule",
    "SchismPartitioner",
    "SimConfig",
    "StrifePartitioner",
    "TSDEFER_DISABLED",
    "TSKD",
    "Table",
    "TpccConfig",
    "TpccGenerator",
    "Transaction",
    "TsDefer",
    "TsDeferConfig",
    "TsPar",
    "Workload",
    "YcsbConfig",
    "YcsbGenerator",
    "apply_io_latency",
    "apply_runtime_skew",
    "assert_serializable",
    "assert_snapshot_consistent",
    "engine_of",
    "load_workload",
    "save_workload",
    "tune_tsdefer",
    "ycsb_core_workload",
    "extract_residual",
    "in_conflict",
    "is_serializable",
    "make_partitioner",
    "make_protocol",
    "make_transaction",
    "read",
    "run_system",
    "system_name",
    "tsgen",
    "tsgen_from_scratch",
    "warm_up_history",
    "workload_from",
    "write",
]
