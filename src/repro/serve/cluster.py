"""Sharded multi-engine serving: the ``--shards N`` front door.

:class:`ClusterServer` keeps the single-engine server's contracts —
bounded admission with backpressure, exactly one response per admitted
transaction, graceful drain writing a schema-valid artifact — while
spreading execution over N engine shards (:mod:`.shard`), each owning a
hash partition of the key space (:mod:`.router`) behind its own epoch
batcher.

Topology::

    conns -> admit -> classify -> shard 0 batcher \\
                                  shard 1 batcher  > shared sink -> dispatcher
                                  ...             /
                                  cross batcher  /

    dispatcher: single-shard epoch  -> owning shard (schedule + execute)
                cross-shard epoch   -> agreed order (coordinator), one
                                       ordered slice per participant

**Determinism.**  Epoch ids come from one shared counter drawn at close
time, and every closed epoch funnels through one sink consumed by one
dispatcher that *synchronously* queues work on each shard's FIFO channel
— so each shard receives and executes its epochs in global id order, and
a replay that walks the recorded epochs in id order
(:func:`replay_cluster`) reconstructs the exact per-shard state.
Cross-shard epochs commit in an order fixed by
``Rng(seed).fork(epoch_id)`` (:mod:`.coordinator`): deterministic, no
2PC, no aborts.

**Fail-stop.**  A dead shard (chaos: :class:`repro.faults.ShardFailStop`)
fails its in-flight and future epochs with explicit backpressure
rejects; surviving shards keep serving, and drain still writes a
cluster artifact whose ``shards`` section records who died.  Cross-shard
transactions touching a dead participant are rejected whole; slices a
surviving participant already executed are *not* rolled back — ordered
epoch commit removes aborts, not the need for recovery, which stays out
of scope (docs/sharding.md).

The single-engine pipeline's schedule/execute overlap happens *inside*
each shard process here (one schedules while another executes);
``pipeline_depth`` therefore does not apply and is ignored.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Sequence

from ..common.config import ConfigError, ExperimentConfig, ServeConfig
from ..common.stats import percentile
from ..obs.artifact import build_serve_artifact, export_serve
from .batcher import Epoch, EpochBatcher, Submission
from .coordinator import agreed_order, slice_epoch
from .pipeline import (
    EpochExecutor,
    EpochSpan,
    TxnOutcome,
    state_digest,
)
from .protocol import STATUS_COMMITTED, STATUS_REJECTED
from .router import RouteDecision, ShardRouter
from .server import EPOCH_SIZE_BUCKETS, SERVE_MS_BUCKETS, ServeServer
from .shard import InlineShard, ProcessShard, ShardDeadError


class ClusterServer(ServeServer):
    """N engine shards behind the single front door."""

    def __init__(
        self,
        serve: ServeConfig,
        exp: ExperimentConfig,
        export_path: Optional[str] = None,
        exit_on_drain: bool = False,
        trace_path: Optional[str] = None,
        shard_mode: str = "process",
        shard_faults: Sequence = (),
    ):
        if serve.shards < 2:
            raise ConfigError(
                f"ClusterServer needs shards >= 2, got {serve.shards}; "
                "use ServeServer for a single engine"
            )
        if trace_path is not None:
            raise ConfigError(
                "span tracing is per-engine and not yet wired across "
                "shard processes; run --shards 1 to trace"
            )
        if shard_mode not in ("process", "inline"):
            raise ConfigError(
                f"shard_mode must be 'process' or 'inline', got {shard_mode!r}"
            )
        self.shard_mode = shard_mode
        #: shard id -> fail_after_epochs, from ShardFailStop chaos specs.
        self._fail_after = {}
        for fault in shard_faults:
            if fault.shard >= serve.shards:
                raise ConfigError(
                    f"ShardFailStop names shard {fault.shard}; "
                    f"cluster has {serve.shards}"
                )
            self._fail_after[fault.shard] = fault.after_epochs
        super().__init__(
            serve, exp,
            export_path=export_path,
            exit_on_drain=exit_on_drain,
            trace_path=None,
        )

    # -- backend hooks ----------------------------------------------------
    def _build_backend(self) -> None:
        serve, exp = self.serve, self.exp
        self.router = ShardRouter(serve.shards)
        self._next_epoch_id = 0
        #: All closed epochs, every batcher, one queue: the dispatcher
        #: consumes them in close order == shared-counter id order.
        self._sink: asyncio.Queue = asyncio.Queue()
        shard_cls = ProcessShard if self.shard_mode == "process" else InlineShard
        self.shards = [
            shard_cls(s, serve, exp,
                      fail_after_epochs=self._fail_after.get(s))
            for s in range(serve.shards)
        ]
        self.shard_batchers = [
            EpochBatcher(
                serve.epoch_max_txns, serve.epoch_max_ms,
                id_source=self._draw_epoch_id, sink=self._sink,
                meta={"shard": s},
            )
            for s in range(serve.shards)
        ]
        self.cross_batcher = EpochBatcher(
            serve.epoch_max_txns, serve.epoch_max_ms,
            id_source=self._draw_epoch_id, sink=self._sink,
            meta={"cross": True},
        )
        self._all_batchers = [*self.shard_batchers, self.cross_batcher]
        #: tid -> RouteDecision, recorded at dispatch (replay + cross
        #: slicing read it; bounded by admission like everything else).
        self._routes: dict[int, RouteDecision] = {}
        #: (epoch_id, shard | None, cross, tids) when record_epoch_tids:
        #: exactly what replay_cluster needs to reconstruct the run.
        self.epoch_records: list[tuple] = []
        self._dispatch_task: Optional[asyncio.Task] = None
        self._epoch_tasks: set = set()
        #: (span, shard, cross) per executed (or failed) epoch.
        self._spans: list[tuple[EpochSpan, Optional[int], bool]] = []
        #: shard id -> final database state, captured at drain.
        self._shard_states: dict[int, dict] = {}
        #: Aliveness at the moment of drain: stopping a worker closes
        #: its pipe just like a crash would, so the artifact must
        #: record who was alive *before* shutdown tore everyone down.
        self._alive_at_drain: Optional[dict[int, bool]] = None
        from ..predict.policy import make_policy
        from ..predict.sketch import DecayedCountMinSketch

        #: Coordinator-side adaptive view (repro.predict).  Each shard
        #: worker adapts locally (its EpochExecutor builds its own policy
        #: from exp.predict); the parent additionally keeps one sketch
        #: per shard — fed from the commit outcomes it already holds, so
        #: no extra wire traffic — and merges them at every epoch
        #: boundary into this policy for admission shedding and the
        #: stats/artifact predict section.
        self._parent_policy = make_policy(exp.predict, exp.seed)
        self._shard_sketches: dict[int, DecayedCountMinSketch] = {}
        if self._parent_policy is not None:
            p = exp.predict
            self._shard_sketches = {
                s: DecayedCountMinSketch(
                    width=p.width, depth=p.depth, decay=p.decay,
                    seed=exp.seed, hot_capacity=p.hot_capacity,
                )
                for s in range(serve.shards)
            }

    def _admission_policy(self):
        return self._parent_policy

    def _feed_predict(self, epoch: Epoch, attempts: dict, shard_of) -> None:
        """Fold an epoch's committed write sets into the per-shard
        sketches, then refresh the coordinator's merged view."""
        policy = self._parent_policy
        if policy is None:
            return
        for sub in epoch.subs:
            if sub.tid in attempts:
                policy.commits_observed += 1
                sketch = self._shard_sketches[shard_of(sub.tid)]
                for key in sub.txn.write_set:
                    sketch.update(key)
        for sketch in self._shard_sketches.values():
            sketch.decay()
        policy.adopt_merged(self._shard_sketches.values())

    def _draw_epoch_id(self) -> int:
        eid = self._next_epoch_id
        self._next_epoch_id += 1
        return eid

    def _start_backend(self) -> None:
        for shard in self.shards:
            shard.start()
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())
        self._pipeline_task = self._dispatch_task

    async def _drain_backend(self) -> None:
        for batcher in self._all_batchers:
            batcher.shutdown()
        await self._dispatch_task
        self._alive_at_drain = {s.shard_id: bool(s.alive)
                                for s in self.shards}
        for shard in self.shards:
            if not shard.alive:
                continue
            try:
                self._shard_states[shard.shard_id] = (
                    await shard.database_state()
                )
            except ShardDeadError:
                pass  # died between the last epoch and drain
        for shard in self.shards:
            await shard.stop()

    def _dispatch(self, sub: Submission) -> None:
        decision = self.router.classify(sub.txn)
        self._routes[sub.tid] = decision
        if decision.cross:
            if all(self.shards[s].alive for s in decision.shards):
                self.cross_batcher.put(sub)
            else:
                self._reject_submission(sub, decision.home, cross=True)
        elif self.shards[decision.home].alive:
            self.shard_batchers[decision.home].put(sub)
        else:
            # The owning shard is gone: reject at dispatch rather than
            # batching toward a worker that can never answer.
            self._reject_submission(sub, decision.home, cross=False)

    # -- the dispatcher ---------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Single consumer of the shared sink; begins epochs in id order.

        ``_begin_*`` are synchronous through the point where each
        participant's FIFO position is fixed, which is what makes
        per-shard execution order equal global epoch-id order.
        """
        open_streams = len(self._all_batchers)
        while open_streams:
            epoch = await self._sink.get()
            if epoch is None:
                open_streams -= 1
                continue
            if epoch.meta.get("cross"):
                self._begin_cross_epoch(epoch)
            else:
                self._begin_shard_epoch(epoch, epoch.meta["shard"])
        if self._epoch_tasks:
            await asyncio.gather(*self._epoch_tasks)

    def _track(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._epoch_tasks.add(task)
        task.add_done_callback(self._epoch_tasks.discard)

    def _begin_shard_epoch(self, epoch: Epoch, shard_id: int) -> None:
        if self.serve.record_epoch_tids:
            self.epoch_records.append(
                (epoch.epoch_id, shard_id, False,
                 [s.tid for s in epoch.subs])
            )
        begun = time.monotonic()
        fut = self.shards[shard_id].begin_epoch(
            epoch.epoch_id, epoch.transactions()
        )
        self._track(self._finish_shard_epoch(epoch, shard_id, fut, begun))

    async def _finish_shard_epoch(
        self, epoch: Epoch, shard_id: int, fut: asyncio.Future, begun: float
    ) -> None:
        try:
            result = await fut
        except ShardDeadError:
            self._fail_epoch(epoch, shard_id, cross=False, begun=begun)
            return
        done = time.monotonic()
        self._record_span(
            epoch, shard_id, cross=False, begun=begun, done=done,
            start_cycles=result.start_cycles, end_cycles=result.end_cycles,
            committed=len(result.attempts), aborts=result.aborts,
        )
        self._feed_predict(epoch, result.attempts, lambda tid: shard_id)
        for sub in epoch.subs:
            self._resolve_sub(sub, epoch, result.attempts, begun, done,
                              shard=shard_id, cross=False)

    def _begin_cross_epoch(self, epoch: Epoch) -> None:
        txns = epoch.transactions()
        ordered = agreed_order(txns, self.exp.seed, epoch.epoch_id)
        homes = {t.tid: self._routes[t.tid].home for t in txns}
        participants = sorted(
            {s for t in txns for s in self._routes[t.tid].shards}
        )
        if self.serve.record_epoch_tids:
            self.epoch_records.append(
                (epoch.epoch_id, None, True, [s.tid for s in epoch.subs])
            )
        slices = slice_epoch(ordered, participants, homes, self.router)
        begun = time.monotonic()
        futs = [
            self.shards[s].begin_epoch(epoch.epoch_id, slices[s], cross=True)
            for s in participants if slices[s]
        ]
        self._track(
            self._finish_cross_epoch(epoch, homes, futs, begun)
        )

    async def _finish_cross_epoch(
        self,
        epoch: Epoch,
        homes: dict[int, int],
        futs: list[asyncio.Future],
        begun: float,
    ) -> None:
        results = await asyncio.gather(*futs, return_exceptions=True)
        dead = [r for r in results if isinstance(r, BaseException)]
        if dead:
            # A participant died: the epoch cannot commit atomically, so
            # every transaction in it is rejected (see module docstring
            # for the surviving-slice caveat).
            self._fail_epoch(epoch, None, cross=True, begun=begun,
                             homes=homes)
            return
        done = time.monotonic()
        attempts: dict[int, int] = {}
        end_cycles = 0
        aborts = 0
        for result in results:
            for tid, n in result.attempts.items():
                attempts[tid] = max(attempts.get(tid, 0), n)
            end_cycles = max(end_cycles, result.end_cycles)
            aborts += result.aborts
        self._record_span(
            epoch, None, cross=True, begun=begun, done=done,
            start_cycles=min(r.start_cycles for r in results),
            end_cycles=end_cycles, committed=len(attempts), aborts=aborts,
        )
        self._feed_predict(epoch, attempts, lambda tid: homes[tid])
        for sub in epoch.subs:
            self._resolve_sub(sub, epoch, attempts, begun, done,
                              shard=homes[sub.tid], cross=True)

    # -- outcome plumbing -------------------------------------------------
    def _resolve_sub(
        self,
        sub: Submission,
        epoch: Epoch,
        attempts: dict[int, int],
        begun: float,
        done: float,
        shard: int,
        cross: bool,
    ) -> None:
        if sub.future is None or sub.future.done():
            return
        sub.future.set_result(TxnOutcome(
            tid=sub.tid,
            epoch_id=epoch.epoch_id,
            attempts=attempts.get(sub.tid, 1),
            queue_s=begun - sub.submitted_at,
            schedule_s=0.0,
            execute_s=done - begun,
            status=STATUS_COMMITTED,
            shard=shard,
            cross_shard=cross,
        ))

    def _reject_submission(
        self, sub: Submission, shard: int, cross: bool
    ) -> None:
        """Late backpressure: admitted, but the owning shard is dead."""
        if sub.future is None or sub.future.done():
            return
        sub.future.set_result(TxnOutcome(
            tid=sub.tid,
            epoch_id=-1,
            attempts=0,
            queue_s=time.monotonic() - sub.submitted_at,
            schedule_s=0.0,
            execute_s=0.0,
            status=STATUS_REJECTED,
            shard=shard,
            cross_shard=cross,
        ))

    def _fail_epoch(
        self,
        epoch: Epoch,
        shard_id: Optional[int],
        cross: bool,
        begun: float,
        homes: Optional[dict[int, int]] = None,
    ) -> None:
        done = time.monotonic()
        self._record_span(
            epoch, shard_id, cross=cross, begun=begun, done=done,
            start_cycles=0, end_cycles=0, committed=0, aborts=0,
        )
        for sub in epoch.subs:
            self._reject_submission(
                sub,
                shard_id if shard_id is not None else homes[sub.tid],
                cross=cross,
            )

    def _record_span(
        self,
        epoch: Epoch,
        shard_id: Optional[int],
        cross: bool,
        begun: float,
        done: float,
        start_cycles: int,
        end_cycles: int,
        committed: int,
        aborts: int,
    ) -> None:
        span = EpochSpan(
            epoch_id=epoch.epoch_id,
            size=epoch.size,
            reason=epoch.reason,
            opened_at=epoch.opened_at,
            closed_at=epoch.closed_at,
            # Scheduling happens inside the shard worker; the split is
            # not observable from the parent, so the span carries the
            # shard turnaround under exec and zero-width sched.
            sched_start=begun,
            sched_end=begun,
            exec_start=begun,
            exec_end=done,
            start_cycles=start_cycles,
            end_cycles=end_cycles,
            committed=committed,
            aborts=aborts,
            tids=([s.tid for s in epoch.subs]
                  if self.serve.record_epoch_tids else None),
        )
        self._spans.append((span, shard_id, cross))
        where = "cross" if cross else f"shard{shard_id}"
        self.metrics.counter("serve.epochs", "epochs executed").inc()
        self.metrics.counter(
            f"serve.{where}.epochs", "epochs executed by this shard"
        ).inc()
        self.metrics.counter(
            f"serve.{where}.committed", "transactions committed on this shard"
        ).inc(committed)
        self.metrics.counter(
            "serve.epoch_aborts", "CC aborts across all epochs"
        ).inc(aborts)
        self.metrics.counter(
            f"serve.epochs_closed.{epoch.reason}", "epochs by close reason"
        ).inc()
        self.metrics.histogram(
            "serve.epoch_size", EPOCH_SIZE_BUCKETS,
            "transactions per closed epoch",
        ).observe(epoch.size)
        self.metrics.histogram(
            "serve.epoch_ms", SERVE_MS_BUCKETS,
            "epoch wall time, first admission to execution end",
        ).observe((done - epoch.opened_at) * 1_000.0)

    # -- introspection ----------------------------------------------------
    def _state_digest(self) -> str:
        merged: dict = {}
        for state in self._shard_states.values():
            merged.update(state)
        return state_digest(self._commit_req_ids, merged, self._tid_req)

    @property
    def end_cycles(self) -> int:
        """Max virtual-clock cursor over the shards (they tick apart)."""
        return max((s.end_cycles for s in self.shards), default=0)

    def stats(self) -> dict:
        doc = {
            "submitted": self._submitted,
            "admitted": self._admitted,
            "rejected": self._rejected,
            "committed": self._committed,
            "pending": self._pending,
            "epoch_open": sum(b.pending for b in self._all_batchers),
            "epochs_closed": sum(b.epochs_closed for b in self._all_batchers),
            "epochs_executed": len(self._spans),
            "end_cycles": self.end_cycles,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "window": self._latency_window.snapshot(),
            "pipeline": {
                "in_flight": len(self._epoch_tasks),
                "depth": self.serve.shards,
                "staged": self._sink.qsize(),
            },
            "admission": {
                "pending": self._pending,
                "queue_limit": self.serve.queue_limit,
                "rejected": self._rejected,
            },
            "epochs_by_reason": self._reasons(),
            "shards": self._shards_section(),
            "metrics": self.metrics.to_dict(),
        }
        if self._parent_policy is not None:
            doc["predict"] = self._parent_policy.snapshot()
        return doc

    def _reasons(self) -> dict:
        merged: dict[str, int] = {}
        for batcher in self._all_batchers:
            for reason, n in batcher.closed_by_reason.items():
                merged[reason] = merged.get(reason, 0) + n
        return merged

    def summary(self) -> dict:
        lat = sorted(self._response_ms)
        doc = {
            "submitted": self._submitted,
            "admitted": self._admitted,
            "rejected": self._rejected,
            "committed": self._committed,
            "epochs": len(self._spans),
            "end_cycles": self.end_cycles,
            "wall_s": round(time.monotonic() - self._started, 3),
            "latency_ms": {
                "p50": round(float(percentile(lat, 0.50)), 3),
                "p95": round(float(percentile(lat, 0.95)), 3),
                "p99": round(float(percentile(lat, 0.99)), 3),
            },
        }
        if self._drained.is_set():
            doc["state_digest"] = self._state_digest()
        return doc

    def server_info(self) -> dict:
        return {
            "system": self.serve.system,
            "host": self.serve.host,
            "port": self.port if self._server is not None else self.serve.port,
            "epoch_max_txns": self.serve.epoch_max_txns,
            "epoch_max_ms": self.serve.epoch_max_ms,
            "queue_limit": self.serve.queue_limit,
            "assignment": self.serve.assignment,
            "pipeline_depth": self.serve.pipeline_depth,
            "shards": self.serve.shards,
            "shard_mode": self.shard_mode,
        }

    def _shards_section(self) -> dict:
        alive = self._alive_at_drain
        return {
            "count": self.serve.shards,
            "per_shard": [
                {
                    "shard": shard.shard_id,
                    "alive": (bool(shard.alive) if alive is None
                              else alive[shard.shard_id]),
                    "epochs": shard.epochs_done,
                    "committed": shard.committed,
                    "aborts": shard.aborts,
                    "end_cycles": shard.end_cycles,
                }
                for shard in self.shards
            ],
        }

    def _epoch_dicts(self) -> list[dict]:
        return [
            {**span.to_dict(),
             "shard": shard_id if shard_id is not None else -1,
             "cross": cross}
            for span, shard_id, cross in self._spans
        ]

    def artifact(self) -> dict:
        return build_serve_artifact(
            self.server_info(),
            self.summary(),
            self._epoch_dicts(),
            metrics=self.metrics,
            config=self.exp,
            shards=self._shards_section(),
            predict=self._predict_section(),
        )

    def _export(self, path: str) -> dict:
        return export_serve(
            path,
            self.server_info(),
            self.summary(),
            self._epoch_dicts(),
            metrics=self.metrics,
            config=self.exp,
            shards=self._shards_section(),
            predict=self._predict_section(),
        )


def replay_cluster(
    serve: ServeConfig,
    exp: ExperimentConfig,
    records: Sequence[tuple],
    transactions: Sequence,
) -> tuple[dict[int, EpochExecutor], dict]:
    """Re-run a cluster session's recorded epochs, batch style.

    ``records`` are ``(epoch_id, shard | None, cross, tids)`` tuples as
    collected by a ``record_epoch_tids`` server (``epoch_records``);
    ``transactions`` must cover every recorded tid.  Epochs are applied
    in id order — exactly the order each shard consumed them live — so
    the resulting per-shard executors finish bit-identical to the live
    shards: same commits, same database state, same clock cursors.
    """
    router = ShardRouter(serve.shards)
    executors = {
        s: EpochExecutor(serve, exp) for s in range(serve.shards)
    }
    txn_of = {t.tid: t for t in transactions}
    for epoch_id, shard_id, cross, tids in sorted(records):
        txns = [txn_of[tid] for tid in tids]
        if cross:
            ordered = agreed_order(txns, exp.seed, epoch_id)
            decisions = {t.tid: router.classify(t) for t in txns}
            homes = {tid: d.home for tid, d in decisions.items()}
            participants = sorted(
                {s for d in decisions.values() for s in d.shards}
            )
            slices = slice_epoch(ordered, participants, homes, router)
            for s in participants:
                if slices[s]:
                    executors[s].execute_serial(slices[s], epoch_id)
        else:
            plan = executors[shard_id].schedule(txns, epoch_id)
            executors[shard_id].execute(plan, epoch_id)
    merged: dict = {}
    for executor in executors.values():
        merged.update(executor.database_state())
    return executors, merged
