"""Key-space partitioning and routing for the sharded serving cluster.

The router answers one question per admitted transaction: *which engine
shards does it touch?*  Keys are mapped to shards by hashing their
**affinity group** — the first element of a composite (tuple) key, the
key itself otherwise — so TPC-C's ``(w_id, ...)`` composite keys all
land with their warehouse and the classic "most NewOrders stay inside
one warehouse" locality turns into "most transactions are single-shard".
For flat YCSB keys the group is the key and hashing spreads rows
uniformly.

Two deliberate design points:

* **Never the builtin ``hash``.**  Python randomises string hashing per
  process (``PYTHONHASHSEED``); routing must agree between the front
  door, every shard worker, every restart, and every replay.  Shards are
  assigned from a SHA-256 over :func:`~repro.common.hashing.stable_repr`
  of the group, salted with :data:`ROUTER_SALT` so a future remap can
  bump the version without colliding with this one.

* **Unpartitioned tables.**  TPC-C's ``item`` table is read-only and
  ``history`` is insert-once with globally unique keys, so neither
  constrains placement; both live "everywhere" and their accesses are
  ignored for classification (a NewOrder reading ``item`` rows is not
  cross-shard for it).  Their rows materialise on the transaction's home
  shard, which keeps per-shard states disjoint and mergeable.

A transaction whose partitioned accesses all map to one shard routes to
that shard's epoch batcher; one that spans shards goes through the
coordinator's epoch-aligned deterministic commit (:mod:`.coordinator`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.hashing import stable_repr
from ..txn.operation import Key
from ..txn.transaction import Transaction

#: Domain-separation salt for the shard map; bump to remap the universe.
ROUTER_SALT = b"repro.shard/1\x00"

#: Tables replicated/unconstrained rather than partitioned: read-only
#: catalogs and append-only logs with globally unique keys.
UNPARTITIONED_TABLES = frozenset({"item", "history"})


def affinity_group(pk: object) -> object:
    """The placement unit a primary key belongs to.

    Composite (tuple) keys group by their first element — for TPC-C that
    is always ``w_id``, so a warehouse's rows across every partitioned
    table co-locate.  Scalar keys are their own group.
    """
    if isinstance(pk, tuple) and pk:
        return pk[0]
    return pk


def shard_of_group(group: object, shards: int) -> int:
    """Deterministic, process-independent shard id for a group."""
    digest = hashlib.sha256(ROUTER_SALT + stable_repr(group).encode())
    return int.from_bytes(digest.digest()[:8], "big") % shards


@dataclass(frozen=True)
class RouteDecision:
    """Where one transaction executes."""

    #: Owning shard ids of the partitioned accesses, ascending; always
    #: non-empty (a txn with only unpartitioned accesses gets a home).
    shards: tuple[int, ...]
    #: The shard that executes it when single-shard, and that hosts its
    #: unpartitioned rows either way: the first partitioned access's
    #: owner (deterministic in the op sequence, not the access *set*).
    home: int
    #: True when the partitioned access set spans shard boundaries.
    cross: bool


class ShardRouter:
    """Total, collision-free map from keys to ``shards`` engine shards."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ConfigError(f"router needs >= 1 shard, got {shards}")
        self.shards = shards

    def shard_of_key(self, key: Key) -> int | None:
        """Owning shard of ``(table, pk)``; None for unpartitioned tables."""
        table, pk = key
        if table in UNPARTITIONED_TABLES:
            return None
        return shard_of_group(affinity_group(pk), self.shards)

    def classify(self, txn: Transaction) -> RouteDecision:
        """Single-shard or cross-shard, from the txn's access sequence."""
        owners: list[int] = []
        seen: set[int] = set()
        fallback: int | None = None
        for op in txn.ops:
            if op.table in UNPARTITIONED_TABLES:
                if fallback is None:
                    fallback = shard_of_group(
                        affinity_group(op.key), self.shards
                    )
                continue
            shard = shard_of_group(affinity_group(op.key), self.shards)
            if shard not in seen:
                seen.add(shard)
                owners.append(shard)
        if not owners:
            # Only unpartitioned accesses: place it wholly on a hash-
            # derived home so placement still never depends on arrival.
            home = fallback if fallback is not None else 0
            return RouteDecision(shards=(home,), home=home, cross=False)
        return RouteDecision(
            shards=tuple(sorted(seen)),
            home=owners[0],
            cross=len(seen) > 1,
        )
