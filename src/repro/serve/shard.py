"""One engine shard of the serving cluster: a worker owning a partition.

A shard is an :class:`~repro.serve.pipeline.EpochExecutor` — one TSKD
instance, one persistent :class:`~repro.storage.database.Database`, one
engine with its virtual clock and TsDEFER state — fed epochs over a
message channel and answering with epoch results.  Two implementations
share the interface:

* :class:`ProcessShard` — the executor lives in its own **spawned
  worker process** (the same spawn + ``PYTHONHASHSEED=0`` determinism
  machinery as :mod:`repro.bench.parallel`), so N shards schedule and
  execute on N cores with no GIL sharing.  The parent talks to it over a
  duplex pipe: a dedicated reader thread pumps results back into the
  event loop, and sends go through a one-thread executor so a pipe full
  of epochs never blocks the loop.

* :class:`InlineShard` — the executor lives in-process behind a
  one-thread pool.  Bit-identical outcomes (the TSKD pipeline is
  hash-seed independent — the contract the parallel-bench differential
  enforces), handy for tests and debugging without process spin-up.

Ordering contract (what determinism rests on): ``begin_epoch`` is
synchronous and the channel is FIFO, so a shard receives — and executes,
one at a time — its epochs in exactly the order the cluster dispatcher
began them.  Replay feeds the same slices in the same order to a fresh
executor and lands on the same state (see docs/sharding.md).

Fail-stop: a worker built with ``fail_after_epochs=K`` hard-exits
(``os._exit``) on *receiving* its K-th epoch.  The parent notices the
pipe going down, marks the shard dead, and fails every in-flight and
future ``begin_epoch`` with :class:`ShardDeadError` — the cluster turns
those into explicit backpressure rejects (never silence).
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Optional, Sequence

from ..common.config import ExperimentConfig, ServeConfig
from ..common.errors import ReproError
from ..txn.transaction import Transaction
from .pipeline import EpochExecutor

#: Message kinds on the parent->worker channel.
_MSG_EPOCH = "epoch"          # scheduled single-shard epoch
_MSG_CROSS = "cross"          # pre-ordered cross-shard slice
_MSG_STATE = "state"          # dump final database state
_MSG_STOP = "stop"            # graceful shutdown


class ShardDeadError(ReproError):
    """The shard's worker process is gone; its epoch cannot run."""


@dataclass
class ShardEpochResult:
    """What one shard reports back for one executed epoch (slice)."""

    epoch_id: int
    #: tid -> attempts, for the transactions this shard executed.
    attempts: dict[int, int]
    start_cycles: int
    end_cycles: int
    aborts: int


def _shard_worker_main(
    conn,
    serve: ServeConfig,
    exp: ExperimentConfig,
    shard_id: int,
    fail_after_epochs: Optional[int],
) -> None:
    """Worker body: epochs in, results out, until told to stop."""
    executor = EpochExecutor(serve, exp)
    received = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing left to serve
        kind = msg[0]
        if kind in (_MSG_EPOCH, _MSG_CROSS):
            received += 1
            if fail_after_epochs is not None and received >= fail_after_epochs:
                # Fail-stop chaos: die on receipt, before executing, so
                # the epoch is genuinely lost and the parent must handle
                # it. os._exit skips atexit/flush like a real crash.
                os._exit(1)
            _, epoch_id, txns = msg
            if kind == _MSG_EPOCH:
                plan = executor.schedule(txns, epoch_id)
                outcome = executor.execute(plan, epoch_id)
            else:
                outcome = executor.execute_serial(txns, epoch_id)
            conn.send((
                "epoch_done",
                ShardEpochResult(
                    epoch_id=epoch_id,
                    attempts=outcome.attempts,
                    start_cycles=outcome.start_cycles,
                    end_cycles=outcome.end_cycles,
                    aborts=outcome.aborts,
                ),
            ))
        elif kind == _MSG_STATE:
            conn.send(("state", executor.database_state()))
        elif kind == _MSG_STOP:
            conn.send(("stopped",))
            conn.close()
            return


class ProcessShard:
    """Parent-side handle to one spawned shard worker."""

    def __init__(
        self,
        shard_id: int,
        serve: ServeConfig,
        exp: ExperimentConfig,
        fail_after_epochs: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.serve = serve
        self.exp = exp
        self.fail_after_epochs = fail_after_epochs
        self.alive = False
        #: Epochs handed to this shard / completed by it (parent-side
        #: accounting; survives the worker dying).
        self.epochs_begun = 0
        self.epochs_done = 0
        self.committed = 0
        self.aborts = 0
        self.end_cycles = 0
        self._proc = None
        self._conn = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._reader: Optional[threading.Thread] = None
        self._send_pool: Optional[ThreadPoolExecutor] = None
        self._waiting: dict[int, asyncio.Future] = {}
        self._state_fut: Optional[asyncio.Future] = None
        self._stopped_fut: Optional[asyncio.Future] = None
        self._stopping = False

    def start(self) -> None:
        """Spawn the worker (under a pinned hash seed) and begin reading."""
        from ..bench.parallel import pinned_hashseed

        self._loop = asyncio.get_running_loop()
        ctx = get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        with pinned_hashseed():
            self._proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, self.serve, self.exp, self.shard_id,
                      self.fail_after_epochs),
                name=f"repro-shard-{self.shard_id}",
                daemon=True,
            )
            self._proc.start()
        child_conn.close()
        self._conn = parent_conn
        self._send_pool = ThreadPoolExecutor(
            1, thread_name_prefix=f"shard{self.shard_id}-send"
        )
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-shard-{self.shard_id}-reader",
            daemon=True,
        )
        self.alive = True
        self._reader.start()

    # -- epoch submission (event-loop thread; synchronous by design) -----
    def begin_epoch(
        self, epoch_id: int, txns: Sequence[Transaction], cross: bool = False
    ) -> asyncio.Future:
        """Queue one epoch (slice) for execution; resolves to its result.

        Synchronous: by the time this returns, the epoch's position in
        the shard's FIFO is fixed, so callers control per-shard
        execution order simply by call order.
        """
        fut = self._loop.create_future()
        if not self.alive:
            fut.set_exception(ShardDeadError(
                f"shard {self.shard_id} is dead; epoch {epoch_id} not run"
            ))
            return fut
        self.epochs_begun += 1
        self._waiting[epoch_id] = fut
        self._send((_MSG_CROSS if cross else _MSG_EPOCH, epoch_id, list(txns)))
        return fut

    async def database_state(self) -> dict:
        """The shard's final ``(table, key) -> record`` map (post-drain)."""
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        self._state_fut = self._loop.create_future()
        self._send((_MSG_STATE,))
        return await self._state_fut

    async def stop(self) -> None:
        """Graceful shutdown; harmless on an already-dead shard."""
        self._stopping = True
        if self.alive:
            self._stopped_fut = self._loop.create_future()
            self._send((_MSG_STOP,))
            try:
                await asyncio.wait_for(self._stopped_fut, timeout=10.0)
            except (asyncio.TimeoutError, ShardDeadError):
                pass
        if self._proc is not None:
            await self._loop.run_in_executor(None, self._proc.join, 5.0)
            if self._proc.is_alive():
                self._proc.kill()
        if self._send_pool is not None:
            self._send_pool.shutdown(wait=False)

    # -- plumbing ---------------------------------------------------------
    def _send(self, msg: tuple) -> None:
        """Send off-loop: a pipe full of epochs must not stall serving."""
        def do_send():
            try:
                self._conn.send(msg)
            except (BrokenPipeError, OSError):
                pass  # reader thread notices the death authoritatively

        self._send_pool.submit(do_send)

    def _read_loop(self) -> None:
        try:
            while True:
                msg = self._conn.recv()
                self._loop.call_soon_threadsafe(self._on_message, msg)
        except (EOFError, OSError):
            pass
        self._loop.call_soon_threadsafe(self._on_disconnect)

    def _on_message(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "epoch_done":
            result: ShardEpochResult = msg[1]
            self.epochs_done += 1
            self.committed += len(result.attempts)
            self.aborts += result.aborts
            self.end_cycles = result.end_cycles
            fut = self._waiting.pop(result.epoch_id, None)
            if fut is not None and not fut.done():
                fut.set_result(result)
        elif kind == "state":
            if self._state_fut is not None and not self._state_fut.done():
                self._state_fut.set_result(msg[1])
        elif kind == "stopped":
            if self._stopped_fut is not None and not self._stopped_fut.done():
                self._stopped_fut.set_result(None)

    def _on_disconnect(self) -> None:
        """Pipe went down: clean stop or crash, either way nothing runs."""
        self.alive = False
        err = ShardDeadError(f"shard {self.shard_id} worker exited")
        for fut in self._waiting.values():
            if not fut.done():
                fut.set_exception(err)
        self._waiting.clear()
        for fut in (self._state_fut, self._stopped_fut):
            if fut is not None and not fut.done():
                if self._stopping:
                    fut.cancel()
                else:
                    fut.set_exception(err)


class InlineShard:
    """In-process shard: same interface, executor behind one thread."""

    def __init__(
        self,
        shard_id: int,
        serve: ServeConfig,
        exp: ExperimentConfig,
        fail_after_epochs: Optional[int] = None,
    ):
        self.shard_id = shard_id
        self.serve = serve
        self.exp = exp
        self.fail_after_epochs = fail_after_epochs
        self.alive = False
        self.epochs_begun = 0
        self.epochs_done = 0
        self.committed = 0
        self.aborts = 0
        self.end_cycles = 0
        self._executor: Optional[EpochExecutor] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._received = 0

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._executor = EpochExecutor(self.serve, self.exp)
        self._pool = ThreadPoolExecutor(
            1, thread_name_prefix=f"shard{self.shard_id}"
        )
        self.alive = True

    def begin_epoch(
        self, epoch_id: int, txns: Sequence[Transaction], cross: bool = False
    ) -> asyncio.Future:
        fut = self._loop.create_future()
        if not self.alive:
            fut.set_exception(ShardDeadError(
                f"shard {self.shard_id} is dead; epoch {epoch_id} not run"
            ))
            return fut
        self._received += 1
        if (self.fail_after_epochs is not None
                and self._received >= self.fail_after_epochs):
            # Emulate the worker dying on receipt: this epoch and all
            # later ones fail, exactly like the process variant.
            self.alive = False
            fut.set_exception(ShardDeadError(
                f"shard {self.shard_id} worker exited"
            ))
            return fut
        self.epochs_begun += 1
        batch = list(txns)

        def run() -> ShardEpochResult:
            if cross:
                outcome = self._executor.execute_serial(batch, epoch_id)
            else:
                plan = self._executor.schedule(batch, epoch_id)
                outcome = self._executor.execute(plan, epoch_id)
            return ShardEpochResult(
                epoch_id=epoch_id,
                attempts=outcome.attempts,
                start_cycles=outcome.start_cycles,
                end_cycles=outcome.end_cycles,
                aborts=outcome.aborts,
            )

        def done(inner):
            try:
                result = inner.result()
            except BaseException as e:  # surface executor bugs, don't hang
                if not fut.done():
                    fut.set_exception(e)
                return
            self.epochs_done += 1
            self.committed += len(result.attempts)
            self.aborts += result.aborts
            self.end_cycles = result.end_cycles
            if not fut.done():
                fut.set_result(result)

        inner = self._pool.submit(run)
        inner.add_done_callback(
            lambda f: self._loop.call_soon_threadsafe(done, f)
        )
        return fut

    async def database_state(self) -> dict:
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        return await self._loop.run_in_executor(
            self._pool, self._executor.database_state
        )

    async def stop(self) -> None:
        if self._pool is not None:
            await self._loop.run_in_executor(self._pool, lambda: None)
            self._pool.shutdown(wait=True)
