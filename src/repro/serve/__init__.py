"""repro.serve — the live scheduling service.

A TCP front door over the TSKD pipeline: clients submit transactions
over ``repro.wire/1`` (newline-delimited JSON), the server admits them
through a bounded queue with explicit backpressure, closes *epochs* by
size or deadline, and runs each epoch through partitioner → TSgen →
TsDEFER → engine against one persistent store.  Scheduling of epoch
N+1 overlaps execution of epoch N (see :mod:`repro.serve.pipeline`),
and every run is replayable batch-side via
:func:`~repro.serve.pipeline.replay_epochs`.

With ``--shards N`` the same front door fans execution out over N
engine shards, each owning a hash partition of the key space in its own
worker process; cross-shard transactions commit in an epoch-aligned
deterministic order with no 2PC (see docs/sharding.md and
:mod:`repro.serve.cluster`).

Layout:

* :mod:`repro.serve.protocol` — the wire codec (frames, txn encoding);
* :mod:`repro.serve.batcher`  — size/deadline epoch closing;
* :mod:`repro.serve.pipeline` — deterministic executor + async overlap;
* :mod:`repro.serve.server`   — the asyncio TCP server and admission;
* :mod:`repro.serve.router`   — key partitioning + txn classification;
* :mod:`repro.serve.shard`    — per-shard engine workers (process/inline);
* :mod:`repro.serve.coordinator` — agreed-order cross-shard commit;
* :mod:`repro.serve.cluster`  — the sharded server + cluster replay;
* :mod:`repro.serve.loadgen`  — seeded open/closed-loop client driver.

See docs/serving.md for the protocol and epoch lifecycle.
"""

from .batcher import CLOSE_DEADLINE, CLOSE_DRAIN, CLOSE_SIZE, Epoch, EpochBatcher, Submission
from .cluster import ClusterServer, replay_cluster
from .coordinator import agreed_order, shard_slice, slice_epoch
from .loadgen import (
    LoadgenReport,
    TxnRecord,
    flash_crowd_schedule,
    poisson_schedule,
    run_loadgen,
)
from .pipeline import (
    SERVABLE_SYSTEMS,
    EpochExecutor,
    EpochOutcome,
    EpochPipeline,
    EpochSpan,
    TxnOutcome,
    make_servable_system,
    replay_epochs,
    state_digest,
)
from .router import (
    UNPARTITIONED_TABLES,
    RouteDecision,
    ShardRouter,
    affinity_group,
    shard_of_group,
)
from .shard import InlineShard, ProcessShard, ShardDeadError, ShardEpochResult
from .protocol import (
    MAX_FRAME_BYTES,
    STATUS_COMMITTED,
    STATUS_REJECTED,
    WIRE_SCHEMA,
    WireError,
    decode_frame,
    encode_frame,
    txn_from_wire,
    txn_to_wire,
)
from .server import ServeServer

__all__ = [
    "CLOSE_DEADLINE",
    "CLOSE_DRAIN",
    "CLOSE_SIZE",
    "ClusterServer",
    "Epoch",
    "EpochBatcher",
    "EpochExecutor",
    "EpochOutcome",
    "EpochPipeline",
    "EpochSpan",
    "InlineShard",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "ProcessShard",
    "RouteDecision",
    "SERVABLE_SYSTEMS",
    "STATUS_COMMITTED",
    "STATUS_REJECTED",
    "ServeServer",
    "ShardDeadError",
    "ShardEpochResult",
    "ShardRouter",
    "Submission",
    "TxnOutcome",
    "TxnRecord",
    "UNPARTITIONED_TABLES",
    "WIRE_SCHEMA",
    "WireError",
    "affinity_group",
    "agreed_order",
    "decode_frame",
    "encode_frame",
    "flash_crowd_schedule",
    "make_servable_system",
    "poisson_schedule",
    "replay_cluster",
    "replay_epochs",
    "run_loadgen",
    "shard_of_group",
    "shard_slice",
    "slice_epoch",
    "state_digest",
    "txn_from_wire",
    "txn_to_wire",
]
