"""repro.serve — the live scheduling service.

A TCP front door over the TSKD pipeline: clients submit transactions
over ``repro.wire/1`` (newline-delimited JSON), the server admits them
through a bounded queue with explicit backpressure, closes *epochs* by
size or deadline, and runs each epoch through partitioner → TSgen →
TsDEFER → engine against one persistent store.  Scheduling of epoch
N+1 overlaps execution of epoch N (see :mod:`repro.serve.pipeline`),
and every run is replayable batch-side via
:func:`~repro.serve.pipeline.replay_epochs`.

Layout:

* :mod:`repro.serve.protocol` — the wire codec (frames, txn encoding);
* :mod:`repro.serve.batcher`  — size/deadline epoch closing;
* :mod:`repro.serve.pipeline` — deterministic executor + async overlap;
* :mod:`repro.serve.server`   — the asyncio TCP server and admission;
* :mod:`repro.serve.loadgen`  — seeded open/closed-loop client driver.

See docs/serving.md for the protocol and epoch lifecycle.
"""

from .batcher import CLOSE_DEADLINE, CLOSE_DRAIN, CLOSE_SIZE, Epoch, EpochBatcher, Submission
from .loadgen import LoadgenReport, TxnRecord, poisson_schedule, run_loadgen
from .pipeline import (
    SERVABLE_SYSTEMS,
    EpochExecutor,
    EpochOutcome,
    EpochPipeline,
    EpochSpan,
    TxnOutcome,
    make_servable_system,
    replay_epochs,
)
from .protocol import (
    MAX_FRAME_BYTES,
    STATUS_COMMITTED,
    STATUS_REJECTED,
    WIRE_SCHEMA,
    WireError,
    decode_frame,
    encode_frame,
    txn_from_wire,
    txn_to_wire,
)
from .server import ServeServer

__all__ = [
    "CLOSE_DEADLINE",
    "CLOSE_DRAIN",
    "CLOSE_SIZE",
    "Epoch",
    "EpochBatcher",
    "EpochExecutor",
    "EpochOutcome",
    "EpochPipeline",
    "EpochSpan",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "SERVABLE_SYSTEMS",
    "STATUS_COMMITTED",
    "STATUS_REJECTED",
    "ServeServer",
    "Submission",
    "TxnOutcome",
    "TxnRecord",
    "WIRE_SCHEMA",
    "WireError",
    "decode_frame",
    "encode_frame",
    "make_servable_system",
    "poisson_schedule",
    "replay_epochs",
    "run_loadgen",
    "txn_from_wire",
    "txn_to_wire",
]
