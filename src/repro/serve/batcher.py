"""Epoch micro-batching: admitted transactions -> closed epochs.

Batch-epoch scheduling is the natural unit for a scheduling front door
(Strife schedules whole batches; TSKD's TsPAR needs a bundle to build
RC-free queues from).  The batcher accumulates admitted submissions into
the *current* epoch and closes it when either bound trips:

* **size** — the epoch reached ``max_txns`` transactions, or
* **deadline** — ``max_ms`` wall milliseconds elapsed since the epoch's
  first admission (an epoch's clock starts at its first transaction, so
  an idle server never spins closing empty epochs).

Closed epochs queue up for the scheduling pipeline in admission order;
``flush`` closes a partial epoch early (drain path) and ``shutdown``
additionally wakes the consumer with an end-of-stream sentinel.

The sharded cluster (:mod:`repro.serve.cluster`) runs one batcher per
shard plus one for cross-shard traffic.  Two hooks exist for that
topology: ``id_source`` draws epoch ids from a shared monotone counter
(so ids are globally unique and ordered by close time across all
batchers), and ``sink`` redirects closed epochs into a shared queue the
cluster dispatcher consumes in close order.  Deadline timers stay
strictly per-batcher and generation-counted: an idle shard's batcher
never arms a timer, and one batcher's deadline can never close another
batcher's epoch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..txn.transaction import Transaction

#: Why an epoch closed.
CLOSE_SIZE = "size"
CLOSE_DEADLINE = "deadline"
CLOSE_DRAIN = "drain"


@dataclass
class Submission:
    """One admitted transaction riding through the serving pipeline."""

    tid: int
    req_id: int
    txn: Transaction
    #: Wall (monotonic) instant the submit frame was admitted.
    submitted_at: float
    #: Resolves to the outcome dict the server turns into a response
    #: frame; None for driver-internal submissions (tests).
    future: Optional[asyncio.Future] = None
    #: Opaque connection handle the response goes back over.
    conn: object = None


@dataclass
class Epoch:
    """A closed batch, ready for the scheduling stage."""

    epoch_id: int
    subs: list[Submission]
    opened_at: float
    closed_at: float
    reason: str
    #: Stamped by the pipeline as the epoch moves through its stages.
    sched_start: float = 0.0
    sched_end: float = 0.0
    exec_start: float = 0.0
    exec_end: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.subs)

    def transactions(self) -> list[Transaction]:
        return [s.txn for s in self.subs]


class EpochBatcher:
    """Size/deadline epoch closer over an asyncio event loop."""

    def __init__(
        self,
        max_txns: int,
        max_ms: float,
        clock: Callable[[], float] = time.monotonic,
        id_source: Optional[Callable[[], int]] = None,
        sink: Optional[asyncio.Queue] = None,
        meta: Optional[dict] = None,
    ):
        if max_txns <= 0:
            raise ValueError(f"max_txns must be positive, got {max_txns}")
        if max_ms <= 0:
            raise ValueError(f"max_ms must be positive, got {max_ms}")
        self.max_txns = max_txns
        self.max_ms = max_ms
        self._clock = clock
        #: Where each closed epoch's id comes from: a shared cluster-wide
        #: counter, or (default) this batcher's own local sequence.
        self._id_source = id_source
        self._local_next = 0
        #: Closed epochs land here; ``sink`` redirects them to a shared
        #: queue (the cluster dispatcher), own queue otherwise.
        self._sink = sink
        #: Copied into every closed epoch's ``meta`` so a shared-sink
        #: consumer can tell which batcher (shard) it came from.
        self._meta = dict(meta) if meta else {}
        self._current: list[Submission] = []
        self._opened_at = 0.0
        self._epochs: asyncio.Queue = asyncio.Queue()
        self._closed = 0
        #: Bumps on every close so a stale deadline timer can recognise
        #: that "its" epoch is already gone.
        self._generation = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self._shut = False
        #: Epochs closed so far, by reason (observability).
        self.closed_by_reason: dict[str, int] = {}

    # -- producer side (event-loop thread only) -------------------------
    @property
    def pending(self) -> int:
        """Transactions sitting in the not-yet-closed epoch."""
        return len(self._current)

    @property
    def epochs_closed(self) -> int:
        return self._closed

    @property
    def timer_armed(self) -> bool:
        """True while a deadline timer is pending (idle batchers arm none)."""
        return self._timer is not None

    def put(self, sub: Submission) -> None:
        """Admit one submission into the current epoch."""
        if self._shut:
            raise RuntimeError("batcher is shut down")
        if not self._current:
            self._opened_at = self._clock()
            self._arm_deadline()
        self._current.append(sub)
        if len(self._current) >= self.max_txns:
            self._close(CLOSE_SIZE)

    def flush(self, reason: str = CLOSE_DRAIN) -> None:
        """Close the current epoch now, even if partial (drain path)."""
        if self._current:
            self._close(reason)

    def shutdown(self) -> None:
        """Flush and signal end-of-stream to the consumer."""
        if self._shut:
            return
        self.flush()
        # Defensive: flush closes any open epoch (which cancels its
        # timer), so no timer should survive to here — but a cancelled
        # straggler firing after shutdown must find nothing armed.
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._shut = True
        (self._sink if self._sink is not None else self._epochs).put_nowait(None)

    # -- consumer side ---------------------------------------------------
    async def next_epoch(self) -> Optional[Epoch]:
        """The next closed epoch, or None once shut down and empty."""
        epoch = await self._epochs.get()
        if epoch is None:
            # Propagate the sentinel to any other waiter.
            self._epochs.put_nowait(None)
            return None
        return epoch

    # -- internals -------------------------------------------------------
    def _arm_deadline(self) -> None:
        loop = asyncio.get_running_loop()
        generation = self._generation
        self._timer = loop.call_later(
            self.max_ms / 1_000.0, self._deadline, generation
        )

    def _deadline(self, generation: int) -> None:
        if generation != self._generation or not self._current:
            return  # the epoch this timer guarded already closed
        self._close(CLOSE_DEADLINE)

    def _close(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._generation += 1
        if self._id_source is not None:
            epoch_id = self._id_source()
        else:
            epoch_id = self._local_next
            self._local_next += 1
        epoch = Epoch(
            epoch_id=epoch_id,
            subs=self._current,
            opened_at=self._opened_at,
            closed_at=self._clock(),
            reason=reason,
            meta=dict(self._meta),
        )
        self._closed += 1
        self._current = []
        self.closed_by_reason[reason] = self.closed_by_reason.get(reason, 0) + 1
        (self._sink if self._sink is not None else self._epochs).put_nowait(epoch)
