"""``repro.wire/1`` — the serving subsystem's wire protocol.

Newline-delimited JSON over a byte stream: every frame is one JSON
object on one line, with a ``type`` discriminator and the protocol
version under ``v``.  The framing is deliberately trivial — the point of
:mod:`repro.serve` is the scheduling boundary, not transport engineering
— but the codec is strict: unknown types, missing fields, and oversized
lines are rejected with :class:`WireError` so a malformed client cannot
wedge the server.

Frame inventory (``c>`` client to server, ``s>`` server to client)::

    c> {"v": "repro.wire/1", "type": "submit", "id": 7, "txn": {...}}
    s> {"v": ..., "type": "response", "id": 7, "status": "committed",
        "tid": 1042, "epoch": 3, "attempts": 1,
        "latency_ms": {"queue": 1.2, "schedule": 0.8, "execute": 2.9,
                       "total": 4.9}}
    s> {"v": ..., "type": "response", "id": 8, "status": "rejected",
        "retry_after_ms": 25.0}

A sharded server (``serve --shards N``) additionally stamps committed
responses with ``"shard"`` (the executing shard) and ``"cross_shard"``
(true when the transaction spanned shards and went through the
epoch-aligned deterministic commit).  Single-engine servers omit both,
so ``repro.wire/1`` stays backwards compatible either way.

    c> {"v": ..., "type": "stats"}
    s> {"v": ..., "type": "stats", "data": {...}}

    c> {"v": ..., "type": "drain"}
    s> {"v": ..., "type": "drained", "summary": {...}}

    s> {"v": ..., "type": "error", "error": "..."}

Transactions travel as their instantiated operation sequences (the
stored-procedure assumption of Section 3): each op is a
``[kind, table, key]`` or ``[kind, table, key, value]`` array.  JSON has
no tuples, so composite keys (TPC-C's ``(w_id, d_id)`` and friends)
encode as arrays and are rebuilt into tuples on decode — the codec is a
bijection over every key/parameter shape the generators produce.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from ..common.errors import ReproError
from ..txn.operation import Operation, OpKind
from ..txn.transaction import Transaction

#: Wire protocol identifier, carried in every frame's ``v`` field.
WIRE_SCHEMA = "repro.wire/1"

#: Hard per-line cap; a frame longer than this is a protocol violation.
MAX_FRAME_BYTES = 1_048_576

#: Frame types a server accepts / emits.
CLIENT_FRAMES = ("submit", "stats", "drain")
SERVER_FRAMES = ("response", "stats", "drained", "error")

#: Response statuses.
STATUS_COMMITTED = "committed"
STATUS_REJECTED = "rejected"


class WireError(ReproError):
    """A frame violated the ``repro.wire/1`` protocol."""


# ----------------------------------------------------------------------
# value codec: JSON arrays <-> tuples
# ----------------------------------------------------------------------
def _freeze(value: Any) -> Any:
    """Rebuild decoded JSON arrays into the tuples the engine hashes."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Encode tuples as JSON arrays (json.dumps does this natively)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


# ----------------------------------------------------------------------
# transaction codec
# ----------------------------------------------------------------------
def txn_to_wire(txn: Transaction) -> dict:
    """Serialise a transaction for a submit frame (tid stays local)."""
    doc: dict = {
        "template": txn.template,
        "ops": [
            [op.kind.value, op.table, _thaw(op.key)]
            if op.value is None
            else [op.kind.value, op.table, _thaw(op.key), _thaw(op.value)]
            for op in txn.ops
        ],
    }
    if txn.params:
        doc["params"] = {str(k): _thaw(v) for k, v in txn.params.items()}
    if txn.min_runtime_cycles:
        doc["min_runtime_cycles"] = txn.min_runtime_cycles
    if txn.io_delay_cycles:
        doc["io_delay_cycles"] = txn.io_delay_cycles
    if txn.has_range:
        doc["has_range"] = True
    return doc


_KINDS = {k.value: k for k in OpKind}


def txn_from_wire(doc: Mapping, tid: int) -> Transaction:
    """Rebuild a transaction from a submit frame under a server tid."""
    if not isinstance(doc, Mapping):
        raise WireError(f"txn must be an object, got {type(doc).__name__}")
    raw_ops = doc.get("ops")
    if not isinstance(raw_ops, list) or not raw_ops:
        raise WireError("txn.ops must be a non-empty array")
    ops = []
    for i, entry in enumerate(raw_ops):
        if not isinstance(entry, list) or not 3 <= len(entry) <= 4:
            raise WireError(f"txn.ops[{i}] must be [kind, table, key(, value)]")
        kind = _KINDS.get(entry[0])
        if kind is None:
            raise WireError(f"txn.ops[{i}]: unknown op kind {entry[0]!r}")
        if not isinstance(entry[1], str):
            raise WireError(f"txn.ops[{i}]: table must be a string")
        value = _freeze(entry[3]) if len(entry) == 4 else None
        ops.append(Operation(kind, entry[1], _freeze(entry[2]), value))
    params = doc.get("params") or {}
    if not isinstance(params, Mapping):
        raise WireError("txn.params must be an object")
    for field in ("min_runtime_cycles", "io_delay_cycles"):
        v = doc.get(field, 0)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise WireError(f"txn.{field} must be a non-negative integer")
    return Transaction(
        tid=tid,
        template=str(doc.get("template", "adhoc")),
        ops=tuple(ops),
        params={k: _freeze(v) for k, v in params.items()},
        min_runtime_cycles=doc.get("min_runtime_cycles", 0),
        io_delay_cycles=doc.get("io_delay_cycles", 0),
        has_range=bool(doc.get("has_range", False)),
    )


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def encode_frame(frame: Mapping) -> bytes:
    """One frame -> one newline-terminated JSON line."""
    doc = dict(frame)
    doc.setdefault("v", WIRE_SCHEMA)
    return (json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_frame(line: bytes, allowed: tuple[str, ...]) -> dict:
    """Parse and validate one received line against ``allowed`` types."""
    if len(line) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as e:
        raise WireError(f"frame is not JSON: {e}") from None
    if not isinstance(doc, dict):
        raise WireError(f"frame must be an object, got {type(doc).__name__}")
    if doc.get("v", WIRE_SCHEMA) != WIRE_SCHEMA:
        raise WireError(f"unsupported protocol version {doc.get('v')!r}")
    kind = doc.get("type")
    if kind not in allowed:
        raise WireError(f"unexpected frame type {kind!r}; allowed: {allowed}")
    if kind == "submit":
        if "txn" not in doc:
            raise WireError("submit frame is missing 'txn'")
        req_id = doc.get("id")
        if not isinstance(req_id, int) or isinstance(req_id, bool):
            raise WireError("submit frame needs an integer 'id'")
    return doc


# -- frame builders (server side) --------------------------------------
def response_frame(
    req_id: int,
    status: str,
    tid: Optional[int] = None,
    epoch: Optional[int] = None,
    attempts: Optional[int] = None,
    latency_ms: Optional[Mapping[str, float]] = None,
    retry_after_ms: Optional[float] = None,
    shard: Optional[int] = None,
    cross_shard: Optional[bool] = None,
) -> dict:
    frame: dict = {"type": "response", "id": req_id, "status": status}
    if tid is not None:
        frame["tid"] = tid
    if epoch is not None:
        frame["epoch"] = epoch
    if attempts is not None:
        frame["attempts"] = attempts
    if latency_ms is not None:
        frame["latency_ms"] = {k: round(v, 3) for k, v in latency_ms.items()}
    if retry_after_ms is not None:
        frame["retry_after_ms"] = retry_after_ms
    if shard is not None:
        frame["shard"] = shard
    if cross_shard is not None:
        frame["cross_shard"] = cross_shard
    return frame


def error_frame(message: str) -> dict:
    return {"type": "error", "error": message}
