"""Epoch-aligned deterministic commit for cross-shard transactions.

No 2PC, no aborts: when a cross-shard epoch closes, the coordinator
fixes a **global order** over its transactions — a seeded shuffle of the
tid-sorted batch, drawn from ``Rng(seed).fork(epoch_id)`` exactly like
the per-epoch scheduling RNG — and every participating shard executes
its *slice* (the ops it owns) serially in that agreed order.  Because
the order is a pure function of ``(seed, epoch_id, admitted tids)``, a
replay that reconstructs the same epochs reproduces the same order, the
same slices, and the same final state.  This is the deterministic-
database move (the ForeSight direction in PAPERS.md): agree on the
order first, then execution needs no coordination at all beyond the
epoch barrier itself.

The functions here are deliberately pure (no I/O, no clocks) so the
live cluster and the replay harness call the exact same code.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..common.rng import Rng
from ..txn.operation import OpKind
from ..txn.transaction import Transaction
from .router import ShardRouter

#: Salt under the epoch fork reserved for the commit-order draw, so the
#: order never correlates with the scheduling RNG of a same-id epoch.
ORDER_SALT = 7


def agreed_order(
    txns: Sequence[Transaction], seed: int, epoch_id: int
) -> list[Transaction]:
    """The epoch's global commit order: a seeded shuffle over tid order.

    Starting from sorted tids makes the result independent of the
    caller's iteration order; the shuffle keeps any one shard from
    systematically executing its slice in admission order (which would
    couple commit order to arrival timing in disguise).
    """
    order = sorted(txns, key=lambda t: t.tid)
    Rng(seed).fork(epoch_id).fork(ORDER_SALT).shuffle(order)
    return order


def shard_slice(
    txn: Transaction, shard: int, home: int, router: ShardRouter
) -> Transaction | None:
    """The sub-transaction of ``txn`` that ``shard`` executes.

    Keeps the ops whose keys the shard owns; unpartitioned-table ops
    ride with the home shard.  The slice keeps the original tid (it is
    the same logical transaction) and re-derives its access sets and
    range flag from the retained ops.  None when the shard owns nothing
    of this transaction.
    """
    owned = []
    for op in txn.ops:
        owner = router.shard_of_key((op.table, op.key))
        if owner == shard or (owner is None and shard == home):
            owned.append(op)
    if not owned:
        return None
    return replace(
        txn,
        ops=tuple(owned),
        has_range=any(op.kind is OpKind.SCAN for op in owned),
    )


def slice_epoch(
    ordered: Sequence[Transaction],
    participants: Sequence[int],
    homes: dict[int, int],
    router: ShardRouter,
) -> dict[int, list[Transaction]]:
    """Per-participant slices of an ordered cross-shard epoch.

    Every slice preserves the agreed order; a participant that owns
    nothing of some transaction simply skips it.  ``homes`` maps tid ->
    home shard (anchoring unpartitioned ops).
    """
    slices: dict[int, list[Transaction]] = {s: [] for s in participants}
    for txn in ordered:
        for shard in participants:
            sliced = shard_slice(txn, shard, homes[txn.tid], router)
            if sliced is not None:
                slices[shard].append(sliced)
    return slices
