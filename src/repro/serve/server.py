"""The serving front door: asyncio TCP server speaking ``repro.wire/1``.

One server owns one :class:`~repro.serve.pipeline.EpochExecutor` (and
therefore one persistent database) and an :class:`EpochPipeline` that
overlaps scheduling with execution.  Connections are cheap: each one is
a reader loop that decodes frames, admits transactions into the shared
batcher, and writes responses as epoch outcomes resolve.

Admission control is a single bounded count: transactions admitted but
not yet responded to.  At ``queue_limit`` the server answers submits
with ``status="rejected"`` and a ``retry_after_ms`` hint instead of
queueing unboundedly — the client owns the retry, so an overloaded
server degrades into explicit backpressure rather than latency collapse.

A ``drain`` frame (or SIGINT on the CLI path) closes the partial epoch,
waits for every in-flight epoch to finish, writes a ``repro.serve/1``
artifact, and answers ``drained`` with the session summary.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..common.config import ExperimentConfig, ServeConfig
from ..common.stats import percentile
from ..obs.artifact import build_serve_artifact, export_serve
from ..obs.live import SlidingWindow
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import JsonlTracer
from .batcher import EpochBatcher, Submission
from .pipeline import EpochExecutor, EpochPipeline, TxnOutcome, state_digest
from .protocol import (
    CLIENT_FRAMES,
    MAX_FRAME_BYTES,
    STATUS_COMMITTED,
    STATUS_REJECTED,
    WireError,
    decode_frame,
    encode_frame,
    error_frame,
    response_frame,
    txn_from_wire,
)

#: Wall-ms histogram buckets for epoch and response latencies.
SERVE_MS_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                    500.0, 1_000.0, 2_000.0, 5_000.0)

#: Epoch-size histogram buckets.
EPOCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048)


class ServeServer:
    """A live scheduling service over one persistent simulated store."""

    def __init__(
        self,
        serve: ServeConfig,
        exp: ExperimentConfig,
        export_path: Optional[str] = None,
        exit_on_drain: bool = False,
        trace_path: Optional[str] = None,
    ):
        self.serve = serve
        self.exp = exp
        self.export_path = export_path
        #: When set, the server closes its listener after answering the
        #: first drain frame (the CI smoke path: loadgen --drain ends
        #: the whole session).
        self.exit_on_drain = exit_on_drain
        #: Optional JSONL span log: engine events plus one "epoch" event
        #: per executed epoch, consumable by ``repro trace --chrome``.
        self.tracer = JsonlTracer(trace_path) if trace_path else None
        self.metrics = MetricsRegistry()
        self._build_backend()

        self._server: Optional[asyncio.base_events.Server] = None
        self._pipeline_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._started = 0.0
        self._next_tid = 0
        #: Admitted but not yet responded to — the backpressure bound.
        self._pending = 0
        self._submitted = 0
        self._admitted = 0
        self._rejected = 0
        self._committed = 0
        #: Server tid -> client request id, recorded at admission.  The
        #: canonical state digest rewrites last-writer tids into request
        #: ids, which are arrival-order independent (see state_digest).
        self._tid_req: dict[int, int] = {}
        #: Request ids of committed transactions, in response order.
        self._commit_req_ids: list[int] = []
        self._response_ms: list[float] = []
        #: Exact response-latency quantiles over the last W wall seconds
        #: (the live section of the stats frame; see repro.obs.live).
        self._latency_window = SlidingWindow()
        self._drained = asyncio.Event()
        self._draining = False

    # -- backend hooks (overridden by the sharded cluster) ----------------
    def _build_backend(self) -> None:
        """Construct the execution backend: one executor, one batcher."""
        self.executor = EpochExecutor(self.serve, self.exp, tracer=self.tracer)
        self.batcher = EpochBatcher(
            self.serve.epoch_max_txns, self.serve.epoch_max_ms
        )
        self.pipeline = EpochPipeline(
            self.executor,
            self.batcher,
            pipeline_depth=self.serve.pipeline_depth,
            on_epoch=self._on_epoch,
            record_tids=self.serve.record_epoch_tids,
        )

    def _start_backend(self) -> None:
        """Kick off the backend's consumer task(s) on the running loop."""
        self._pipeline_task = asyncio.create_task(self.pipeline.run())

    async def _drain_backend(self) -> None:
        """Flush open epochs and wait for every in-flight one to finish."""
        self.batcher.shutdown()
        await self._pipeline_task

    def _dispatch(self, sub: Submission) -> None:
        """Hand an admitted submission to the backend."""
        self.batcher.put(sub)

    def _state_digest(self) -> str:
        """Canonical digest of commits + final db state (request-id space)."""
        return state_digest(
            self._commit_req_ids,
            self.executor.database_state(),
            self._tid_req,
        )

    def _admission_policy(self):
        """The adaptive policy consulted at admission, or None (static)."""
        return self.executor.policy

    # -- lifecycle --------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the actual ephemeral one)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._started = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.serve.host,
            port=self.serve.port,
            limit=MAX_FRAME_BYTES + 1_024,
        )
        self._start_backend()

    async def serve_forever(self) -> None:
        """Run until the listener is closed (drain with exit_on_drain)."""
        async with self._server:
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass

    async def stop(self) -> dict:
        """Drain and shut down; returns the session summary."""
        summary = await self.drain()
        self._server.close()
        await self._server.wait_closed()
        await self.close_connections()
        return summary

    async def close_connections(self) -> None:
        """Cancel reader loops still parked on idle connections."""
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def drain(self) -> dict:
        """Flush the open epoch, finish in-flight work, write the artifact."""
        if not self._drained.is_set():
            if not self._draining:
                self._draining = True
                await self._drain_backend()
                if self.tracer is not None:
                    self.tracer.close()
                policy = self._admission_policy()
                if policy is not None:
                    # Final predict.* counters/gauges for the artifact's
                    # metrics registry (live values ride the stats frame).
                    policy.publish(self.metrics)
                # Set before exporting so the artifact's summary carries
                # the post-drain state digest.
                self._drained.set()
                if self.export_path is not None:
                    self._export(self.export_path)
            else:
                await self._drained.wait()
        return self.summary()

    # -- per-connection reader loop --------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        # Swallow cancellation at the task boundary: the streams machinery
        # probes task.exception() in a plain callback, and a propagated
        # CancelledError there is reported as a loop-teardown traceback.
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown interrupted a parked readline
        finally:
            self._conn_tasks.discard(task)

    async def _connection_loop(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    doc = decode_frame(line, CLIENT_FRAMES)
                except WireError as e:
                    writer.write(encode_frame(error_frame(str(e))))
                    await writer.drain()
                    continue
                kind = doc["type"]
                if kind == "submit":
                    self._handle_submit(doc, writer)
                elif kind == "stats":
                    writer.write(encode_frame(
                        {"type": "stats", "data": self.stats()}
                    ))
                elif kind == "drain":
                    summary = await self.drain()
                    writer.write(encode_frame(
                        {"type": "drained", "summary": summary}
                    ))
                    await writer.drain()
                    if self.exit_on_drain:
                        self._server.close()
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass  # peer vanished or the loop is shutting down

    def _handle_submit(self, doc: dict, writer) -> None:
        self._submitted += 1
        self.metrics.counter(
            "serve.submitted", "submit frames received"
        ).inc()
        req_id = doc["id"]
        if self._draining or self._pending >= self.serve.queue_limit:
            self._reject_now(req_id, writer)
            return
        try:
            txn = txn_from_wire(doc["txn"], tid=self._next_tid)
        except WireError as e:
            writer.write(encode_frame(error_frame(str(e))))
            return
        policy = self._admission_policy()
        if policy is not None and policy.should_reject(
            txn, self._pending / max(1, self.serve.queue_limit)
        ):
            # Priority admission band: with the queue running hot, shed
            # predicted-conflict-prone transactions first so cold traffic
            # keeps flowing (docs/adaptive.md).  The tid is not consumed.
            self.metrics.counter(
                "predict.admission_shed",
                "predicted-hot submits shed under backpressure",
            ).inc()
            self._reject_now(req_id, writer)
            return
        self._next_tid += 1
        self._pending += 1
        self._admitted += 1
        self._tid_req[txn.tid] = req_id
        self.metrics.counter("serve.admitted", "transactions admitted").inc()
        self.metrics.gauge(
            "serve.queue_depth", "admitted, not yet responded"
        ).set(self._pending)
        future = asyncio.get_running_loop().create_future()
        sub = Submission(
            tid=txn.tid,
            req_id=req_id,
            txn=txn,
            submitted_at=time.monotonic(),
            future=future,
            conn=writer,
        )
        future.add_done_callback(
            lambda fut, sub=sub: self._respond(sub, fut)
        )
        self._dispatch(sub)

    def _reject_now(self, req_id: int, writer) -> None:
        """Backpressure a submit before admission (bounded queue / drain)."""
        self._rejected += 1
        self.metrics.counter(
            "serve.rejected", "submits rejected by backpressure"
        ).inc()
        writer.write(encode_frame(response_frame(
            req_id, STATUS_REJECTED,
            retry_after_ms=self.serve.retry_after_ms,
        )))

    def _respond(self, sub: Submission, fut: asyncio.Future) -> None:
        outcome: TxnOutcome = fut.result()
        self._pending -= 1
        self.metrics.gauge("serve.queue_depth").set(self._pending)
        writer = sub.conn
        if outcome.status == STATUS_REJECTED:
            # Admitted, but the owning shard died before its epoch ran:
            # an explicit late backpressure reject, never silence.
            self._rejected += 1
            self.metrics.counter(
                "serve.rejected", "submits rejected by backpressure"
            ).inc()
            if writer is None or writer.is_closing():
                return
            writer.write(encode_frame(response_frame(
                sub.req_id, STATUS_REJECTED,
                retry_after_ms=self.serve.retry_after_ms,
                shard=outcome.shard,
                cross_shard=outcome.cross_shard,
            )))
            return
        self._committed += 1
        self._commit_req_ids.append(sub.req_id)
        self.metrics.counter(
            "serve.committed", "transactions committed"
        ).inc()
        total_s = time.monotonic() - sub.submitted_at
        total_ms = total_s * 1_000.0
        self._response_ms.append(total_ms)
        self._latency_window.observe(total_ms)
        self.metrics.histogram(
            "serve.latency_ms", SERVE_MS_BUCKETS,
            "submit-to-response wall latency",
        ).observe(total_ms)
        if writer is None or writer.is_closing():
            return
        writer.write(encode_frame(response_frame(
            sub.req_id,
            STATUS_COMMITTED,
            tid=outcome.tid,
            epoch=outcome.epoch_id,
            attempts=outcome.attempts,
            latency_ms={
                "queue": outcome.queue_s * 1_000.0,
                "schedule": outcome.schedule_s * 1_000.0,
                "execute": outcome.execute_s * 1_000.0,
                "total": total_ms,
            },
            shard=outcome.shard,
            cross_shard=outcome.cross_shard,
        )))

    # -- pipeline callback -------------------------------------------------
    def _on_epoch(self, epoch, outcome, span) -> None:
        self.metrics.counter("serve.epochs", "epochs executed").inc()
        self.metrics.counter(
            "serve.epoch_aborts", "CC aborts across all epochs"
        ).inc(outcome.aborts)
        self.metrics.counter(
            f"serve.epochs_closed.{epoch.reason}",
            "epochs by close reason",
        ).inc()
        self.metrics.histogram(
            "serve.epoch_size", EPOCH_SIZE_BUCKETS,
            "transactions per closed epoch",
        ).observe(epoch.size)
        self.metrics.histogram(
            "serve.epoch_ms", SERVE_MS_BUCKETS,
            "epoch wall time, first admission to execution end",
        ).observe((span.exec_end - span.opened_at) * 1_000.0)
        self.metrics.gauge(
            "serve.inflight_epochs", "epochs inside the pipeline"
        ).set(self.pipeline.in_flight)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """The enriched ``stats`` frame: totals plus live telemetry.

        The flat keys predate enrichment and stay for compatibility;
        ``window`` (sliding-window latency quantiles), ``pipeline``
        (stage occupancy), ``admission`` (backpressure state),
        ``epochs_by_reason``, and the full ``metrics`` registry snapshot
        feed ``repro watch`` (see repro.obs.live).
        """
        doc = {
            "submitted": self._submitted,
            "admitted": self._admitted,
            "rejected": self._rejected,
            "committed": self._committed,
            "pending": self._pending,
            "epoch_open": self.batcher.pending,
            "epochs_closed": self.batcher.epochs_closed,
            "epochs_executed": len(self.pipeline.spans),
            "end_cycles": self.executor.clock,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "window": self._latency_window.snapshot(),
            "pipeline": {
                "in_flight": self.pipeline.in_flight,
                "depth": self.pipeline.pipeline_depth,
                "staged": self.pipeline.staged,
            },
            "admission": {
                "pending": self._pending,
                "queue_limit": self.serve.queue_limit,
                "rejected": self._rejected,
            },
            "epochs_by_reason": dict(self.batcher.closed_by_reason),
            "metrics": self.metrics.to_dict(),
        }
        policy = self._admission_policy()
        if policy is not None:
            # Live sketch heat + retune trail for `repro watch`; the key
            # is absent on static servers so their frame is unchanged.
            doc["predict"] = policy.snapshot()
        return doc

    def summary(self) -> dict:
        lat = sorted(self._response_ms)
        doc = {
            "submitted": self._submitted,
            "admitted": self._admitted,
            "rejected": self._rejected,
            "committed": self._committed,
            "epochs": len(self.pipeline.spans),
            "end_cycles": self.executor.clock,
            "wall_s": round(time.monotonic() - self._started, 3),
            "latency_ms": {
                "p50": round(float(percentile(lat, 0.50)), 3),
                "p95": round(float(percentile(lat, 0.95)), 3),
                "p99": round(float(percentile(lat, 0.99)), 3),
            },
        }
        # Only a quiesced store has a meaningful digest (and reading it
        # mid-run would race the execute stage).
        if self._drained.is_set():
            doc["state_digest"] = self._state_digest()
        return doc

    def server_info(self) -> dict:
        return {
            "system": self.serve.system,
            "host": self.serve.host,
            "port": self.port if self._server is not None else self.serve.port,
            "epoch_max_txns": self.serve.epoch_max_txns,
            "epoch_max_ms": self.serve.epoch_max_ms,
            "queue_limit": self.serve.queue_limit,
            "assignment": self.serve.assignment,
            "pipeline_depth": self.serve.pipeline_depth,
        }

    def _predict_section(self) -> Optional[dict]:
        policy = self._admission_policy()
        return policy.snapshot() if policy is not None else None

    def artifact(self) -> dict:
        return build_serve_artifact(
            self.server_info(),
            self.summary(),
            [span.to_dict() for span in self.pipeline.spans],
            metrics=self.metrics,
            config=self.exp,
            predict=self._predict_section(),
        )

    def _export(self, path: str) -> dict:
        return export_serve(
            path,
            self.server_info(),
            self.summary(),
            [span.to_dict() for span in self.pipeline.spans],
            metrics=self.metrics,
            config=self.exp,
            predict=self._predict_section(),
        )
