"""Load generator: drive a ``repro.serve`` server over real sockets.

Two driving modes, both fully seeded:

* **closed-loop** — each client keeps exactly one transaction in flight:
  submit, wait for the response, submit the next.  Offered load adapts
  to service rate; the classic "N clients" benchmark shape.
* **open-loop** — submissions follow a Poisson schedule at an offered
  rate regardless of responses (the open-system shape of Section 2.1,
  over the wire).  Under overload the open loop keeps submitting, which
  is exactly what exercises the server's backpressure path.

Rejected submits are retried by the client after the server's
``retry_after_ms`` hint — backpressure is a protocol feature here, so a
loadgen run only counts a transaction done once it commits.

Determinism: the transaction stream comes from the seeded workload
generators and the Poisson schedule from :func:`poisson_schedule`; two
runs with the same seed submit identical transactions on an identical
schedule (wall-clock jitter changes *when* responses land, never what
is sent).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.rng import Rng
from ..common.stats import percentile
from ..txn.transaction import Transaction
from .protocol import (
    SERVER_FRAMES,
    STATUS_COMMITTED,
    STATUS_REJECTED,
    WireError,
    decode_frame,
    encode_frame,
    txn_to_wire,
)


def poisson_schedule(n: int, offered_tps: float, seed: int) -> list[float]:
    """Seconds-from-start send instants for ``n`` Poisson arrivals."""
    if offered_tps <= 0:
        raise ValueError(f"offered_tps must be positive, got {offered_tps}")
    rng = Rng(seed)
    mean_gap = 1.0 / offered_tps
    clock = 0.0
    schedule = []
    for _ in range(n):
        clock += -mean_gap * math.log(max(rng.random(), 1e-12))
        schedule.append(clock)
    return schedule


def flash_crowd_schedule(
    n: int,
    offered_tps: float,
    seed: int,
    every_s: float,
    burst_s: float,
    mult: float,
) -> list[float]:
    """Poisson arrivals with a periodic flash-crowd rate multiplier.

    Every ``every_s`` seconds the offered rate jumps to ``mult *
    offered_tps`` for ``burst_s`` seconds, then falls back — a seeded,
    repeating flash crowd.  Each inter-arrival gap is drawn at the rate
    in effect when it starts (piecewise-constant thinning), so the
    schedule is a pure function of the arguments: same seed, same
    instants, byte-for-byte.  ``mult=1`` degenerates to
    :func:`poisson_schedule` exactly (same draw sequence).
    """
    if offered_tps <= 0:
        raise ValueError(f"offered_tps must be positive, got {offered_tps}")
    if every_s <= 0 or burst_s < 0 or burst_s > every_s:
        raise ValueError(
            f"need 0 <= burst_s <= every_s, got {burst_s}/{every_s}")
    if mult < 1.0:
        raise ValueError(f"flash multiplier must be >= 1, got {mult}")
    rng = Rng(seed)
    clock = 0.0
    schedule = []
    for _ in range(n):
        in_flash = (clock % every_s) < burst_s
        rate = offered_tps * (mult if in_flash else 1.0)
        clock += -(1.0 / rate) * math.log(max(rng.random(), 1e-12))
        schedule.append(clock)
    return schedule


@dataclass
class TxnRecord:
    """Client-side record of one transaction's trip."""

    req_id: int
    status: str
    tid: Optional[int] = None
    epoch: Optional[int] = None
    attempts: Optional[int] = None
    rejects: int = 0
    #: First submit to committed response, wall seconds.
    latency_s: float = 0.0


@dataclass
class LoadgenReport:
    """What one loadgen run observed, client side."""

    txns: int
    committed: int
    rejects: int
    errors: int
    wall_s: float
    records: list[TxnRecord] = field(default_factory=list)
    drained: Optional[dict] = None

    @property
    def latency_ms(self) -> dict:
        lat = sorted(r.latency_s * 1_000.0
                     for r in self.records if r.status == STATUS_COMMITTED)
        return {
            "p50": round(float(percentile(lat, 0.50)), 3),
            "p95": round(float(percentile(lat, 0.95)), 3),
            "p99": round(float(percentile(lat, 0.99)), 3),
        }

    def to_dict(self) -> dict:
        return {
            "txns": self.txns,
            "committed": self.committed,
            "rejects": self.rejects,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 3),
            "latency_ms": self.latency_ms,
        }


class _Client:
    """One connection: a reader task plus per-transaction submitters."""

    def __init__(self, reader, writer, max_retries: int):
        self.reader = reader
        self.writer = writer
        self.max_retries = max_retries
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: Optional[asyncio.Task] = None
        self._drained_fut: Optional[asyncio.Future] = None
        self.errors = 0

    def start(self) -> None:
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        while True:
            try:
                line = await self.reader.readline()
            except (ConnectionError, asyncio.CancelledError):
                break
            if not line:
                break
            try:
                frame = decode_frame(line, SERVER_FRAMES)
            except WireError:
                self.errors += 1
                continue
            if frame["type"] == "error":
                self.errors += 1
                continue
            if frame["type"] == "drained":
                if self._drained_fut is not None and not self._drained_fut.done():
                    self._drained_fut.set_result(frame.get("summary"))
                continue
            if frame["type"] != "response":
                continue
            fut = self._pending.pop(frame.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(frame)

    async def submit(self, req_id: int, txn: Transaction) -> TxnRecord:
        """Submit until committed, honouring retry-after backpressure."""
        doc = txn_to_wire(txn)
        record = TxnRecord(req_id=req_id, status="error")
        started = time.monotonic()
        for _ in range(self.max_retries + 1):
            fut = asyncio.get_running_loop().create_future()
            self._pending[req_id] = fut
            self.writer.write(encode_frame(
                {"type": "submit", "id": req_id, "txn": doc}
            ))
            await self.writer.drain()
            frame = await fut
            if frame["status"] == STATUS_COMMITTED:
                record.status = STATUS_COMMITTED
                record.tid = frame.get("tid")
                record.epoch = frame.get("epoch")
                record.attempts = frame.get("attempts")
                record.latency_s = time.monotonic() - started
                return record
            if frame["status"] == STATUS_REJECTED:
                record.rejects += 1
                await asyncio.sleep(frame.get("retry_after_ms", 10.0) / 1_000.0)
                continue
            break
        record.status = "error"
        return record

    async def drain(self) -> Optional[dict]:
        self._drained_fut = asyncio.get_running_loop().create_future()
        self.writer.write(encode_frame({"type": "drain"}))
        await self.writer.drain()
        return await self._drained_fut

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


async def run_loadgen(
    host: str,
    port: int,
    transactions: Sequence[Transaction],
    clients: int = 8,
    mode: str = "closed",
    offered_tps: Optional[float] = None,
    seed: int = 0,
    drain: bool = False,
    max_retries: int = 1_000,
    trace_path: Optional[str] = None,
    flash_every_s: Optional[float] = None,
    flash_burst_s: float = 1.0,
    flash_mult: float = 4.0,
) -> LoadgenReport:
    """Drive ``transactions`` at a server and report what happened.

    Transaction ``i`` always goes to client ``i % clients`` with request
    id ``i`` — the deal is positional, so the submission plan is a pure
    function of (transactions, clients, seed).

    ``trace_path`` writes one JSON line per transaction record after the
    run (client-side status, epoch, attempts, rejects, latency) — the
    wire-level counterpart of the server's span log.

    ``flash_every_s`` switches the open-loop schedule to
    :func:`flash_crowd_schedule`: a periodic seeded burst multiplying the
    offered rate by ``flash_mult`` for ``flash_burst_s`` seconds.
    """
    if clients <= 0:
        raise ValueError(f"clients must be positive, got {clients}")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (offered_tps is None or offered_tps <= 0):
        raise ValueError("open-loop mode needs a positive offered_tps")
    if flash_every_s is not None and mode != "open":
        raise ValueError("flash crowds need open-loop mode (--mode open)")

    conns: list[_Client] = []
    for _ in range(clients):
        reader, writer = await asyncio.open_connection(host, port)
        client = _Client(reader, writer, max_retries)
        client.start()
        conns.append(client)

    if mode != "open":
        schedule = None
    elif flash_every_s is not None:
        schedule = flash_crowd_schedule(
            len(transactions), offered_tps, seed,
            every_s=flash_every_s, burst_s=flash_burst_s, mult=flash_mult)
    else:
        schedule = poisson_schedule(len(transactions), offered_tps, seed)
    started = time.monotonic()

    async def drive(ci: int) -> list[TxnRecord]:
        client = conns[ci]
        mine = [(i, t) for i, t in enumerate(transactions) if i % clients == ci]
        records = []
        if mode == "closed":
            for i, txn in mine:
                records.append(await client.submit(i, txn))
        else:
            tasks = []
            for i, txn in mine:
                delay = started + schedule[i] - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(client.submit(i, txn)))
            records = list(await asyncio.gather(*tasks))
        return records

    try:
        per_client = await asyncio.gather(*(drive(ci) for ci in range(clients)))
        records = [r for recs in per_client for r in recs]
        records.sort(key=lambda r: r.req_id)
        drained = await conns[0].drain() if drain else None
    finally:
        for client in conns:
            await client.close()

    wall = time.monotonic() - started
    if trace_path is not None:
        import json

        with open(trace_path, "w", encoding="utf-8") as f:
            for r in records:
                f.write(json.dumps({
                    "req_id": r.req_id, "status": r.status, "tid": r.tid,
                    "epoch": r.epoch, "attempts": r.attempts,
                    "rejects": r.rejects,
                    "latency_s": round(r.latency_s, 6),
                }, sort_keys=True))
                f.write("\n")
    return LoadgenReport(
        txns=len(transactions),
        committed=sum(1 for r in records if r.status == STATUS_COMMITTED),
        rejects=sum(r.rejects for r in records),
        errors=(sum(1 for r in records if r.status == "error")
                + sum(c.errors for c in conns)),
        wall_s=wall,
        records=records,
        drained=drained,
    )
