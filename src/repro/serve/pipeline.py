"""Epoch scheduling/execution pipeline behind the serving front door.

Two layers:

* :class:`EpochExecutor` — synchronous and deterministic.  Owns the
  long-lived state of a running service: one TSKD instance, one
  persistent :class:`~repro.storage.database.Database`, one engine whose
  virtual clock, version store, and TsDEFER filter carry across epochs,
  and one history cost model fed by noise-free dry-run costs.  Given the
  same epoch compositions it produces bit-identical schedules and final
  database state no matter how the wall clock sliced the input — this is
  what the batch-equivalence test in ``tests/serve`` leans on, via
  :func:`replay_epochs`.

* :class:`EpochPipeline` — the asyncio conveyor that overlaps stages:
  while epoch *N* executes in one worker thread, epoch *N+1* is being
  scheduled in another (the classic batch-scheduler trick of hiding
  scheduling latency behind execution).  Determinism survives the
  overlap because the two stages touch disjoint state: scheduling reads
  and writes {cost model, TsPAR, per-epoch RNG}; execution reads and
  writes {engine, database, TsDEFER, virtual-clock cursor}.  Epochs flow
  through each stage strictly in epoch-id order, and the cost model is
  fed dry-run estimates (not measured runtimes), so schedule(N+1) never
  depends on execute(N).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..common.config import TSDEFER_DISABLED, ExperimentConfig, ServeConfig
from ..common.rng import Rng
from ..core.tskd import TSKD, ExecutionPlan
from ..sim.engine import MulticoreEngine, PhaseResult
from ..sim.fastengine import make_engine
from ..sim.stream import assign_least_loaded
from ..storage.database import Database
from ..sim.warmup import dry_run_cost
from ..txn.cost import HistoryCostModel, OpCountCostModel
from ..txn.transaction import Transaction
from ..txn.workload import Workload
from .batcher import Epoch, EpochBatcher

#: Systems a serving executor accepts: TSKD instances with CC-backed
#: queue execution, or plain dbcc as the no-scheduling baseline.  Bare
#: partitioners and enforced ("!") variants need the two-engine batch
#: path in repro.bench.runner and cannot share a persistent store.
SERVABLE_SYSTEMS = ("dbcc", "tskd-s", "tskd-c", "tskd-h", "tskd-0", "tskd-cc")


def make_servable_system(spec: str) -> TSKD:
    """Resolve a system spec into a TSKD usable for continuous serving."""
    name = spec.lower()
    if name == "dbcc":
        # Round-robin + CC, nothing else: modelled as a TSKD with both
        # modules off so the serving path is uniform.
        return TSKD(partitioner=None, use_tspar=False, tsdefer=TSDEFER_DISABLED)
    from ..bench.runner import make_system

    system = make_system(name)
    if not isinstance(system, TSKD):
        raise ValueError(
            f"system {spec!r} is not servable; choose from {SERVABLE_SYSTEMS}"
        )
    if system.queue_execution != "cc":
        raise ValueError(
            "enforced queue execution cannot serve a persistent store; "
            "drop the '!' suffix"
        )
    return system


@dataclass
class EpochOutcome:
    """What execution of one epoch produced."""

    epoch_id: int
    #: tid -> attempts (1 = committed first try).
    attempts: dict[int, int]
    result: PhaseResult
    start_cycles: int
    end_cycles: int

    @property
    def committed(self) -> int:
        return len(self.attempts)

    @property
    def aborts(self) -> int:
        return self.result.counters.aborts


class _CommitLog:
    """Progress hook that records per-transaction commit attempts."""

    def __init__(self):
        self._engine: Optional[MulticoreEngine] = None
        self.attempts: dict[int, int] = {}

    def bind(self, engine: MulticoreEngine) -> None:
        self._engine = engine

    def on_dispatch(self, thread_id: int, txn: Transaction, now: int) -> None:
        pass

    def on_commit(self, thread_id: int, txn: Transaction, now: int) -> None:
        # ActiveTxn.attempt counts *aborted* attempts (0 = clean first
        # try); the wire reports total tries, so +1.
        active = self._engine.active_txn(thread_id)
        self.attempts[txn.tid] = (active.attempt + 1) if active is not None else 1

    def drain(self) -> dict[int, int]:
        out, self.attempts = self.attempts, {}
        return out


class _HookFanout:
    """Broadcast engine progress callbacks to several listeners."""

    def __init__(self, hooks: Sequence):
        self._hooks = tuple(hooks)

    def on_dispatch(self, thread_id: int, txn: Transaction, now: int) -> None:
        for h in self._hooks:
            h.on_dispatch(thread_id, txn, now)

    def on_commit(self, thread_id: int, txn: Transaction, now: int) -> None:
        for h in self._hooks:
            h.on_commit(thread_id, txn, now)


class EpochExecutor:
    """Deterministic schedule/execute core shared by server and replay."""

    def __init__(self, serve: ServeConfig, exp: ExperimentConfig, db=None,
                 tracer=None):
        self.serve = serve
        self.exp = exp
        self.k = exp.sim.num_threads
        self.tskd = make_servable_system(serve.system)
        self.cost = HistoryCostModel(fallback=OpCountCostModel(exp.sim))
        self.commit_log = _CommitLog()
        #: The persistent store every epoch commits into.  Callers may
        #: hand in a pre-populated database; otherwise tables are created
        #: on first reference (rows then appear at first committed write,
        #: the engine's usual lazy-ensure path).
        self.db = db if db is not None else Database()
        tsdefer = self.tskd.make_filter(self.k, rng=Rng(exp.seed).fork(3))
        from ..predict.policy import make_policy

        #: Online adaptive policy (repro.predict), or None for a static
        #: server.  When present it observes commits via the hook fanout,
        #: steers TsPAR through tsgen's ``heat`` hook, and retunes the
        #: TsDEFER filter at each epoch boundary.
        self.policy = make_policy(exp.predict, exp.seed)
        hooks = [h for h in (tsdefer, self.policy, self.commit_log)
                 if h is not None]
        if self.policy is not None and exp.predict.steer and self.tskd.use_tspar:
            self.tskd.tspar.tsgen_kwargs["heat"] = self.policy
        if self.policy is not None and exp.predict.retune and tsdefer is not None:
            tsdefer.heat = self.policy
        #: Optional span sink: engine events stream into it across every
        #: epoch, and execute() adds one "epoch" event per epoch so the
        #: Chrome exporter can draw the epoch track (repro trace --chrome).
        self.tracer = tracer
        self.engine = make_engine(
            exp.sim,
            db=self.db,
            dispatch_filter=tsdefer,
            progress_hooks=_HookFanout(hooks),
            tracer=tracer,
        )
        self.commit_log.bind(self.engine)
        if tsdefer is not None:
            tsdefer.table.bind_buffers(self.engine.buffer_of)
        self.tsdefer = tsdefer
        #: Virtual-clock cursor: each epoch starts where the last ended.
        self.clock = 0

    # -- stage 1: scheduling (cost model + TsPAR + RNG only) ------------
    def schedule(self, txns: Sequence[Transaction], epoch_id: int) -> ExecutionPlan:
        """Prepare one epoch's execution plan; deterministic per epoch."""
        workload = Workload(list(txns), name=f"epoch-{epoch_id}")
        # Feed the history model the same noise-free dry-run estimates a
        # warm-up pass would have produced, so replay sees identical
        # costs regardless of when each epoch arrived.
        for t in txns:
            self.cost.record(t, dry_run_cost(t, self.exp.sim))
        rng = Rng(self.exp.seed).fork(epoch_id)
        plan = self.tskd.prepare(workload, self.k, self.cost, rng=rng)
        if self.serve.assignment == "least_loaded":
            self._rebalance(plan)
        return plan

    def _rebalance(self, plan: ExecutionPlan) -> None:
        """Swap round-robin-dealt phases for least-loaded packing.

        Only phases TSKD itself dealt round-robin are rebalanced: the
        single phase of a no-TsPAR plan, or the residual phase of a
        scheduled plan.  RC-free queues carry a precedence order and are
        never touched.
        """
        target = None
        if plan.schedule is None:
            target = 0
        elif plan.num_phases > 1:
            target = 1
        if target is None:
            return
        txns = [t for buf in plan.phases[target] for t in buf]
        plan.phases[target] = assign_least_loaded(
            txns, self.k, load=self.cost.time
        )

    # -- stage 2: execution (engine + database + TsDEFER only) -----------
    def execute(
        self,
        plan: ExecutionPlan,
        epoch_id: int,
        canonical: Optional[Sequence[Transaction]] = None,
    ) -> EpochOutcome:
        """Run a prepared epoch against the persistent store.

        After the engine finishes, each written key is reconciled to the
        *canonical commit order* — ``canonical`` when given (the agreed
        order of a cross-shard epoch), tid-ascending within the epoch
        otherwise.  Every admitted transaction commits (the engine
        retries aborts to completion), so the canonical last writer's
        value is always a committed value and the version counter — one
        bump per committed write — is order-invariant.  This makes the
        final database state a pure function of *which transactions ran
        in which epoch slices*, not of scheduling interleavings: slicing
        an epoch across shards and replaying it whole land on identical
        state (see docs/sharding.md).
        """
        # Table creation is an execute-stage mutation (db is this stage's
        # state); ordered tables throughout so range ops always work.
        for phase in plan.phases:
            for buf in phase:
                for txn in buf:
                    for op in txn.ops:
                        if op.table not in self.db:
                            self.db.create_table(op.table, ordered=True)
        start = self.clock
        result = self.tskd.execute_plan(self.engine, plan, start_time=start)
        self.clock = result.end_time
        if canonical is None:
            canonical = sorted(
                (t for phase in plan.phases for buf in phase for t in buf),
                key=lambda t: t.tid,
            )
        self._install_canonical(canonical)
        if self.tracer is not None:
            from ..obs.tracing import TraceEvent

            # Stamped at the epoch's end cycle so the span log's clock
            # stays monotone (engine events of this epoch precede it).
            self.tracer.emit(TraceEvent(
                t=result.end_time, thread=0, kind="epoch", tid=-1,
                attrs={"epoch": epoch_id, "start_cycles": start,
                       "committed": len(self.commit_log.attempts),
                       "aborts": result.counters.aborts}))
        if self.policy is not None:
            dispatched = sum(len(buf) for phase in plan.phases
                             for buf in phase)
            self.policy.end_epoch(self.tsdefer,
                                  aborts=result.counters.aborts,
                                  dispatched=dispatched)
        return EpochOutcome(
            epoch_id=epoch_id,
            attempts=self.commit_log.drain(),
            result=result,
            start_cycles=start,
            end_cycles=result.end_time,
        )

    def execute_serial(
        self, txns: Sequence[Transaction], epoch_id: int
    ) -> EpochOutcome:
        """Run a cross-shard slice serially in the given agreed order.

        Cross-shard epochs bypass scheduling: the coordinator already
        fixed a global order (``Rng(seed).fork(epoch_id)``), and every
        participant executes its slice on one thread in exactly that
        order — deterministic commits with no 2PC and no aborts to
        resolve.  The single-buffer plan leaves the cost model untouched
        (only :meth:`schedule` feeds it), so single-shard scheduling is
        unaffected by how much cross traffic interleaves.
        """
        ordered = list(txns)
        plan = ExecutionPlan(
            phases=[[ordered] + [[] for _ in range(self.k - 1)]]
        )
        return self.execute(plan, epoch_id, canonical=ordered)

    def _install_canonical(self, order: Sequence[Transaction]) -> None:
        """Reconcile written records to the canonical last writer."""
        for txn in order:
            for op in txn.ops:
                if not op.is_write:
                    continue
                table = self.db.table(op.table)
                if op.key in table:
                    record = table.get(op.key)
                    record.value = op.value
                    record.last_writer = txn.tid

    # -- inspection -------------------------------------------------------
    def database_state(self) -> dict:
        """Flat ``(table, key) -> (value, version, last_writer)`` map."""
        state = {}
        for table in self.engine.db.tables():
            for key in table.keys():
                record = table.get(key)
                state[(table.name, key)] = (
                    record.value, record.version, record.last_writer
                )
        return state


def state_digest(
    req_ids: Sequence[int],
    db_state: dict,
    tid_to_req: Optional[dict[int, int]] = None,
) -> str:
    """Canonical digest of a serving run's observable outcome.

    Covers the committed request ids and the final database state with
    last-writer tids rewritten to request ids (``tid_to_req``).  Server
    tids depend on arrival order under concurrent clients, so raw tids
    differ run-to-run even when the *logical* outcome is identical; in
    request-id space the digest is comparable across topologies
    (``--shards 1`` vs ``--shards N``) and across runs.
    """
    from ..common.hashing import config_hash

    mapping = tid_to_req or {}
    return config_hash({
        "commits": sorted(req_ids),
        "db": {
            key: [value, version, mapping.get(last_writer, last_writer)]
            for key, (value, version, last_writer) in db_state.items()
        },
    })


def replay_epochs(
    serve: ServeConfig,
    exp: ExperimentConfig,
    epochs: Sequence[Sequence[Transaction]],
) -> tuple[EpochExecutor, list[EpochOutcome]]:
    """Run epoch compositions through a fresh executor, batch style.

    This is the reference run for serve-vs-batch equivalence: a server
    that closed the same epochs must report the same commits and leave an
    identical database behind.
    """
    executor = EpochExecutor(serve, exp)
    outcomes = []
    for epoch_id, txns in enumerate(epochs):
        plan = executor.schedule(txns, epoch_id)
        outcomes.append(executor.execute(plan, epoch_id))
    return executor, outcomes


@dataclass
class EpochSpan:
    """Wall-clock trace of one epoch's trip through the pipeline."""

    epoch_id: int
    size: int
    reason: str
    opened_at: float
    closed_at: float
    sched_start: float
    sched_end: float
    exec_start: float
    exec_end: float
    start_cycles: int
    end_cycles: int
    committed: int
    aborts: int
    tids: Optional[list[int]] = None

    def to_dict(self) -> dict:
        doc = {
            "epoch": self.epoch_id,
            "size": self.size,
            "reason": self.reason,
            "opened_at": round(self.opened_at, 6),
            "closed_at": round(self.closed_at, 6),
            "sched_start": round(self.sched_start, 6),
            "sched_end": round(self.sched_end, 6),
            "exec_start": round(self.exec_start, 6),
            "exec_end": round(self.exec_end, 6),
            "start_cycles": self.start_cycles,
            "end_cycles": self.end_cycles,
            "committed": self.committed,
            "aborts": self.aborts,
        }
        if self.tids is not None:
            doc["tids"] = self.tids
        return doc


@dataclass
class TxnOutcome:
    """Per-transaction result handed back to the submitting connection."""

    tid: int
    epoch_id: int
    attempts: int
    queue_s: float
    schedule_s: float
    execute_s: float
    #: "committed", or "rejected" when the owning shard died before the
    #: epoch executed (cluster fail-stop path; see repro.serve.cluster).
    status: str = "committed"
    #: Shard that executed the transaction; None on the single-engine path.
    shard: Optional[int] = None
    #: True when the transaction spanned shards (epoch-aligned commit).
    cross_shard: Optional[bool] = None


class EpochPipeline:
    """Two-stage async conveyor: schedule(N+1) overlaps execute(N)."""

    def __init__(
        self,
        executor: EpochExecutor,
        batcher: EpochBatcher,
        pipeline_depth: int = 1,
        on_epoch: Optional[Callable[[Epoch, EpochOutcome, EpochSpan], None]] = None,
        record_tids: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.executor = executor
        self.batcher = batcher
        self.on_epoch = on_epoch
        self.record_tids = record_tids
        self._clock = clock
        self._staged: asyncio.Queue = asyncio.Queue(maxsize=pipeline_depth)
        self._sched_pool = ThreadPoolExecutor(1, thread_name_prefix="serve-sched")
        self._exec_pool = ThreadPoolExecutor(1, thread_name_prefix="serve-exec")
        self.spans: list[EpochSpan] = []
        #: Epochs admitted to a stage but not yet finished executing.
        self.in_flight = 0
        self.pipeline_depth = pipeline_depth

    @property
    def staged(self) -> int:
        """Scheduled epochs waiting for the execute stage."""
        return self._staged.qsize()

    async def run(self) -> None:
        """Consume the batcher until shutdown; returns once drained.

        Static servers overlap the stages; adaptive servers (executor has
        a :class:`~repro.predict.policy.OnlinePolicy`) run a serial
        schedule→execute loop instead — prediction feeds the sketch on
        commit and reads it while scheduling, so the stages no longer
        touch disjoint state and overlap would make schedules depend on
        thread timing.  Serialising keeps the live server bit-identical
        to :func:`replay_epochs`, at the cost of the scheduling-latency
        overlap (docs/adaptive.md quantifies it).
        """
        try:
            if self.executor.policy is not None:
                await self._serial_loop()
            else:
                await asyncio.gather(self._schedule_loop(), self._execute_loop())
        finally:
            self._sched_pool.shutdown(wait=False)
            self._exec_pool.shutdown(wait=False)

    async def _serial_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            epoch = await self.batcher.next_epoch()
            if epoch is None:
                return
            self.in_flight += 1
            epoch.sched_start = self._clock()
            plan = await loop.run_in_executor(
                self._sched_pool,
                self.executor.schedule,
                epoch.transactions(),
                epoch.epoch_id,
            )
            epoch.sched_end = self._clock()
            epoch.exec_start = self._clock()
            outcome = await loop.run_in_executor(
                self._exec_pool, self.executor.execute, plan, epoch.epoch_id
            )
            epoch.exec_end = self._clock()
            self.in_flight -= 1
            self._finish(epoch, outcome)

    async def _schedule_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            epoch = await self.batcher.next_epoch()
            if epoch is None:
                await self._staged.put(None)
                return
            self.in_flight += 1
            epoch.sched_start = self._clock()
            plan = await loop.run_in_executor(
                self._sched_pool,
                self.executor.schedule,
                epoch.transactions(),
                epoch.epoch_id,
            )
            epoch.sched_end = self._clock()
            await self._staged.put((epoch, plan))

    async def _execute_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._staged.get()
            if item is None:
                return
            epoch, plan = item
            epoch.exec_start = self._clock()
            outcome = await loop.run_in_executor(
                self._exec_pool, self.executor.execute, plan, epoch.epoch_id
            )
            epoch.exec_end = self._clock()
            self.in_flight -= 1
            self._finish(epoch, outcome)

    def _finish(self, epoch: Epoch, outcome: EpochOutcome) -> None:
        span = EpochSpan(
            epoch_id=epoch.epoch_id,
            size=epoch.size,
            reason=epoch.reason,
            opened_at=epoch.opened_at,
            closed_at=epoch.closed_at,
            sched_start=epoch.sched_start,
            sched_end=epoch.sched_end,
            exec_start=epoch.exec_start,
            exec_end=epoch.exec_end,
            start_cycles=outcome.start_cycles,
            end_cycles=outcome.end_cycles,
            committed=outcome.committed,
            aborts=outcome.aborts,
            tids=[s.tid for s in epoch.subs] if self.record_tids else None,
        )
        self.spans.append(span)
        self._resolve(epoch, outcome)
        if self.on_epoch is not None:
            self.on_epoch(epoch, outcome, span)

    def _resolve(self, epoch: Epoch, outcome: EpochOutcome) -> None:
        for sub in epoch.subs:
            if sub.future is None or sub.future.done():
                continue
            sub.future.set_result(TxnOutcome(
                tid=sub.tid,
                epoch_id=epoch.epoch_id,
                attempts=outcome.attempts.get(sub.tid, 1),
                queue_s=epoch.sched_start - sub.submitted_at,
                schedule_s=epoch.sched_end - epoch.sched_start,
                execute_s=epoch.exec_end - epoch.exec_start,
            ))
