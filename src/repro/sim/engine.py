"""Discrete-event simulation of a multicore in-memory transaction engine.

This module replaces the paper's real 32-vCPU DBx1000 deployment (which
Python's GIL cannot reproduce meaningfully) with a virtual-time model that
preserves what the paper's claims are about: operation interleavings,
runtime-conflict windows, aborts/retries, blocking, load balance, and
makespan.

Model
-----
``k`` simulated threads each own a local buffer of transactions
(Section 2.1's workload model).  A thread repeatedly: dispatches the next
transaction (optionally filtered by TsDEFER), executes its operations one
at a time (each costing ``op_cost + cc_op_overhead`` cycles, mediated by
the CC protocol), waits out its runtime-skew lower bound, validates and
installs at commit (``commit_overhead`` cycles), then serves its
commit-time I/O stall.  An abort charges ``abort_penalty`` and hands the
retry schedule to the configured restart policy
(:mod:`repro.faults.policies`); the default ``immediate`` policy is
DBx1000's retry loop, bit-for-bit.

An optional fault injector (:mod:`repro.faults`) interleaves a compiled
timeline of spurious aborts, thread stalls, fail-stop crashes (with
buffer redistribution so no transaction is lost), and I/O latency spikes
into the event loop at virtual-cycle precision.  With no injector — or
an injector over an empty plan — every code path below is cycle- and
RNG-identical to an engine without the faults layer.

All threads share one virtual clock; events are totally ordered, so CC
metadata updates are atomic exactly like the latched critical sections of
a real engine.  Throughput is committed transactions divided by the final
makespan.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence

from ..cc import make_protocol
from ..cc.base import AccessStatus, CCProtocol
from ..common.config import SimConfig
from ..common.errors import SimulationError
from ..common.rng import Rng
from ..common.stats import Counters
from ..faults.injector import FaultInjector
from ..faults.plan import FaultEvent
from ..faults.policies import make_policy
from ..obs.prof import ProfiledTracer, Profiler
from ..obs.tracing import TraceEvent, Tracer
from ..storage.database import Database
from ..txn.operation import Key, OpKind
from ..txn.transaction import Transaction

#: Hard cap on per-transaction retries; hitting it means the protocol
#: livelocked, which the test suite treats as a bug.
MAX_RETRIES = 10_000

#: Profiler section charged for a step event, keyed by the phase the
#: thread is in when the event pops (spurious wakeups of parked phases
#: are loop bookkeeping, not engine work).
_PHASE_SECTIONS = {
    "dispatch": "engine.dispatch",
    "op": "engine.op",
    "precommit": "engine.precommit",
    "commit": "engine.commit",
    "finish": "engine.finish",
    "idle": "engine.loop",
    "blocked": "engine.loop",
    "gated": "engine.loop",
    "crashed": "engine.loop",
}


@dataclass
class ActiveTxn:
    """Mutable per-attempt execution state of the transaction a thread runs."""

    txn: Transaction
    thread_id: int
    #: Stable timestamp for wait-die ordering: first-dispatch sequence number.
    ts: int
    attempt: int = 0
    op_index: int = 0
    attempt_start: int = 0
    dispatched_at: int = 0
    observed: dict[Key, int] = field(default_factory=dict)
    write_buffer: dict[Key, object] = field(default_factory=dict)
    held_locks: set[Key] = field(default_factory=set)
    ctx: dict = field(default_factory=dict)
    #: Versions observed by *reads* this attempt, for the history log.
    reads_log: dict[Key, int] = field(default_factory=dict)
    blocked_since: int = 0

    def reset_attempt(self, now: int) -> None:
        self.op_index = 0
        self.attempt_start = now
        self.observed.clear()
        self.write_buffer.clear()
        self.ctx.clear()
        self.reads_log.clear()


@dataclass(frozen=True)
class CommittedRecord:
    """History entry for one committed transaction (isolation oracles)."""

    tid: int
    commit_time: int
    reads: tuple[tuple[Key, int], ...]
    writes: tuple[tuple[Key, int], ...]
    #: When the committing attempt began (its snapshot instant, for
    #: multi-version protocols).
    start_time: int = 0


class DispatchFilter(Protocol):
    """TsDEFER's hook: inspect the next transaction before it runs.

    Returns ``(defer, cost_cycles)``; when ``defer`` is true the engine
    moves the transaction to the back of the thread's buffer.
    """

    def filter(self, thread_id: int, txn: Transaction, now: int) -> tuple[bool, int]: ...


class ProgressHooks(Protocol):
    """Progress-table maintenance callbacks (regPos analog)."""

    def on_dispatch(self, thread_id: int, txn: Transaction, now: int) -> None: ...

    def on_commit(self, thread_id: int, txn: Transaction, now: int) -> None: ...


class DispatchGate(Protocol):
    """Precedence gate for enforced schedule execution.

    ``ready`` is consulted before a transaction is dispatched; a blocked
    thread parks until the gate wakes it (the gate learns about commits
    via its ProgressHooks role and calls the engine's ``wake_gated``).
    """

    def ready(self, txn: Transaction) -> bool: ...

    def block(self, thread_id: int, txn: Transaction) -> None: ...


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one :meth:`MulticoreEngine.run` call."""

    start_time: int
    end_time: int
    counters: Counters
    thread_busy: tuple[int, ...]
    #: Per-transaction service latency in cycles (dispatch to completion,
    #: including retries and commit stalls; deferral wait is queueing
    #: time, not service time, and is excluded).
    latencies: tuple[int, ...] = ()
    #: Per-committed-transaction retry count (aborted attempts before the
    #: one that committed), in completion order — the raw data behind the
    #: retry-count distribution histogram.
    retry_counts: tuple[int, ...] = ()

    @property
    def makespan(self) -> int:
        return self.end_time - self.start_time


def merge_phase_results(results: Sequence[PhaseResult]) -> PhaseResult:
    """Fold consecutive phase results into one aggregate result.

    Used wherever one logical unit of work spans several ``run`` calls on
    the same engine — a TsPAR queue phase followed by its residual phase,
    or a serving epoch executed against a persistent database
    (:mod:`repro.serve.pipeline`).  Counters, latencies, and per-thread
    busy cycles accumulate; the window spans first start to last end.
    """
    if not results:
        raise SimulationError("merge_phase_results needs at least one result")
    counters = Counters()
    busy = [0] * len(results[0].thread_busy)
    latencies: list[int] = []
    retry_counts: list[int] = []
    for r in results:
        if len(r.thread_busy) != len(busy):
            raise SimulationError(
                f"cannot merge phases over {len(r.thread_busy)} and "
                f"{len(busy)} threads")
        counters.merge(r.counters)
        latencies.extend(r.latencies)
        retry_counts.extend(r.retry_counts)
        for i, b in enumerate(r.thread_busy):
            busy[i] += b
    return PhaseResult(
        start_time=results[0].start_time,
        end_time=max(r.end_time for r in results),
        counters=counters,
        thread_busy=tuple(busy),
        latencies=tuple(latencies),
        retry_counts=tuple(retry_counts),
    )


class _Thread:
    __slots__ = ("id", "buffer", "phase", "active", "busy", "dispatch_began",
                 "pending_seq", "pending_at", "crash_pending")

    def __init__(self, thread_id: int):
        self.id = thread_id
        self.buffer: deque[Transaction] = deque()
        self.phase = "idle"
        self.active: Optional[ActiveTxn] = None
        self.busy = 0
        self.dispatch_began = 0
        #: Sequence number of this thread's one outstanding step event;
        #: a popped event with a different seq was superseded by a fault
        #: (stall reschedule, injected abort, crash) and is ignored.
        self.pending_seq = -1
        self.pending_at = 0
        #: A crash fired past the commit point; fail stop after install.
        self.crash_pending = False


class MulticoreEngine:
    """The simulated k-core transaction execution engine."""

    def __init__(
        self,
        config: SimConfig,
        protocol: CCProtocol | None = None,
        db: Database | None = None,
        dispatch_filter: Optional[DispatchFilter] = None,
        progress_hooks: Optional[ProgressHooks] = None,
        record_history: bool = False,
        apply_writes: bool = True,
        dispatch_gate: "Optional[DispatchGate]" = None,
        versions: Optional[dict] = None,
        history: Optional[list] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
        prof: Optional[Profiler] = None,
    ):
        self.config = config
        self.db = db if db is not None else Database()
        self.protocol = protocol if protocol is not None else make_protocol(config.cc)
        self.dispatch_filter = dispatch_filter
        self.progress_hooks = progress_hooks
        self.record_history = record_history
        self.apply_writes = apply_writes and db is not None
        #: Optional structured-span sink (repro.obs).  Every emission is
        #: guarded by one ``is not None`` check and never touches the
        #: clock or any RNG stream, so a disabled tracer is free and a
        #: traced run is bit-identical to an untraced one.
        self.tracer = tracer
        #: Precedence gate for enforced CC-free execution (optional).
        self.dispatch_gate = dispatch_gate
        #: Shared committed-version store (one word per key); pass an
        #: existing dict to continue another engine's version lineage
        #: (e.g. an enforced queue phase followed by a CC residual phase).
        self.versions: dict[Key, int] = versions if versions is not None else {}
        #: Committed-transaction log; pass a list to share it across the
        #: engines of a multi-engine execution.
        self.history: list[CommittedRecord] = history if history is not None else []
        self.protocol.bind(self)

        self._threads = [_Thread(i) for i in range(config.num_threads)]
        #: Named jitter stream consumed *only* by restart decisions: two
        #: transactions that abort each other in lockstep would otherwise
        #: retry in lockstep forever (deterministic symmetric livelock,
        #: which real engines break with randomised backoff).  Nothing
        #: else may draw from it — in particular fault injection draws
        #: all of its randomness at plan-compile time — so injecting a
        #: fault can never shift a later transaction's backoff.
        self._restart_rng = Rng(config.seed * 61 + 29)
        #: What an aborted transaction does next (SimConfig.restart_policy).
        self.restart_policy = make_policy(config.restart_policy, config,
                                          self._restart_rng, engine=self)
        #: Optional fault-timeline cursor (repro.faults); an injector over
        #: an empty plan is inert and leaves the run byte-identical.
        self.faults = faults
        #: Optional section profiler (repro.obs.prof).  Same contract as
        #: the tracer: every touch is behind one ``is not None`` check and
        #: nothing here reads the virtual clock or any RNG stream, so a
        #: profiled run schedules bit-identically to an unprofiled one.
        self.prof = prof
        if prof is not None and self.tracer is not None:
            # Account tracer emission time to ``obs.trace`` so tracing
            # overhead shows up in the self-time table instead of
            # polluting whichever engine section emitted the event.
            self.tracer = ProfiledTracer(self.tracer, prof)
        cc = self.protocol.name
        self._sec_cc_begin = f"cc.{cc}.begin"
        self._sec_cc_access = f"cc.{cc}.access"
        self._sec_cc_precommit = f"cc.{cc}.precommit"
        self._sec_cc_validate = f"cc.{cc}.validate"
        self._sec_cc_install = f"cc.{cc}.install"
        self._sec_cc_cleanup = f"cc.{cc}.cleanup"
        self._events: list[tuple[int, int, int]] = []
        self._seq = 0
        self._txn_seq = 0
        self._now = 0
        self._counters = Counters()
        self._latencies: list[int] = []
        self._retry_counts: list[int] = []
        self._arrival_payload: dict[int, tuple[int, Transaction]] = {}
        self._arrived_at: dict[int, int] = {}
        #: tid -> attempt count carried across a requeue (crash recovery
        #: or a defer_coldest migration), so retry statistics survive the
        #: move to another thread's buffer.
        self._carry_attempts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return self.config.num_threads

    def active_txn(self, thread_id: int) -> Optional[ActiveTxn]:
        """The transaction thread ``thread_id`` is currently executing."""
        return self._threads[thread_id].active

    def buffer_of(self, thread_id: int) -> deque:
        return self._threads[thread_id].buffer

    def wake_thread(self, thread_id: int, now: int) -> None:
        """Resume a lock-blocked thread (called by pessimistic protocols)."""
        thread = self._threads[thread_id]
        if thread.phase != "blocked":
            return
        waited = now - thread.active.blocked_since
        self._counters.blocked_cycles += waited
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, thread_id, "wake",
                                        thread.active.txn.tid,
                                        {"waited": waited}))
        thread.phase = "op"
        self._schedule(now, thread_id)

    def run(
        self,
        buffers: Sequence[Iterable[Transaction]],
        start_time: int = 0,
        arrivals: Sequence[tuple[int, int, Transaction]] = (),
    ) -> PhaseResult:
        """Execute one phase: per-thread buffers to completion.

        ``buffers`` must have exactly ``num_threads`` entries (empty ones
        are fine).  ``arrivals`` optionally injects transactions over
        time — ``(time, thread_id, txn)`` tuples appended to the thread's
        buffer when the virtual clock reaches ``time`` (the open-system
        mode; see :mod:`repro.sim.stream`).  Latency for arriving
        transactions is measured from their arrival instant, so it
        includes queueing delay.

        Returns the phase's makespan and counters; engine state (storage,
        versions, CC words, history) persists across phases so a TsPAR
        queue phase can be followed by a residual phase.
        """
        if len(buffers) != self.num_threads:
            raise SimulationError(
                f"expected {self.num_threads} buffers, got {len(buffers)}"
            )
        self._now = start_time
        self._counters = Counters()
        self._latencies: list[int] = []
        self._retry_counts: list[int] = []
        self._arrival_payload: dict[int, tuple[int, Transaction]] = {}
        self._arrived_at: dict[int, int] = {}
        self._carry_attempts = {}
        for thread, txns in zip(self._threads, buffers):
            thread.buffer = deque(txns)
            thread.phase = "dispatch"
            thread.busy = 0
            thread.active = None
            thread.crash_pending = False
            self._schedule(start_time, thread.id)
        for when, thread_id, txn in arrivals:
            if when < start_time:
                raise SimulationError(
                    f"arrival at {when} precedes phase start {start_time}"
                )
            self._seq += 1
            self._arrival_payload[self._seq] = (thread_id, txn)
            self._arrived_at[txn.tid] = when
            heapq.heappush(self._events, (when, self._seq, thread_id))

        end_time = self._drain(start_time)

        stuck = [t for t in self._threads if t.phase in ("blocked", "gated")]
        if stuck:
            raise SimulationError(
                f"threads {[t.id for t in stuck]} still "
                f"{self._threads[stuck[0].id].phase} at end of phase"
            )
        return PhaseResult(
            start_time=start_time,
            end_time=end_time,
            counters=self._counters,
            thread_busy=tuple(t.busy for t in self._threads),
            latencies=tuple(self._latencies),
            retry_counts=tuple(self._retry_counts),
        )

    def _drain(self, start_time: int) -> int:
        """Pop events until the heap is empty; return the last event time.

        This is the engine's entire inner loop, factored out so that
        :class:`repro.sim.fastengine.FastEngine` can substitute a
        flattened implementation while inheriting setup, teardown, and
        every per-phase handler unchanged.
        """
        end_time = start_time
        prof = self.prof
        if prof is not None:
            # Heap pops, seq guards, and everything not attributed to a
            # finer section below lands in ``engine.loop`` self-time.
            prof.push("engine.loop")
        while self._events:
            # Lazily interleave the fault timeline: fire every injected
            # fault stamped at or before the next engine event.  Faults
            # stamped after the run's last event never fire, so an
            # injector cannot stretch the makespan by itself.
            if self.faults is not None:
                ev = self.faults.pop_due(self._events[0][0])
                if ev is not None:
                    self._now = max(ev.when, self._now)
                    if prof is None:
                        self._apply_fault(ev, self._now)
                    else:
                        prof.push("faults.apply")
                        self._apply_fault(ev, self._now)
                        prof.pop()
                    continue
            when, seq, thread_id = heapq.heappop(self._events)
            self._now = when
            end_time = max(end_time, when)
            payload = self._arrival_payload.pop(seq, None)
            if payload is not None:
                if prof is None:
                    self._handle_arrival(payload[0], payload[1], when)
                else:
                    prof.push("engine.arrival")
                    self._handle_arrival(payload[0], payload[1], when)
                    prof.pop()
            else:
                thread = self._threads[thread_id]
                # A mismatched seq means this event was superseded by a
                # fault; with no faults the single-outstanding-event
                # invariant makes the guard a no-op.
                if seq == thread.pending_seq:
                    if prof is None:
                        self._step(thread, when)
                    else:
                        prof.push(_PHASE_SECTIONS[thread.phase])
                        self._step(thread, when)
                        prof.pop()
        if prof is not None:
            prof.pop()
        return end_time

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------
    def _schedule(self, when: int, thread_id: int) -> None:
        self._seq += 1
        thread = self._threads[thread_id]
        thread.pending_seq = self._seq
        thread.pending_at = when
        heapq.heappush(self._events, (when, self._seq, thread_id))

    def _requeue(self, when: int, thread_id: int, txn: Transaction) -> None:
        """Inject ``txn`` as an arrival on ``thread_id`` at time ``when``."""
        self._seq += 1
        self._arrival_payload[self._seq] = (thread_id, txn)
        heapq.heappush(self._events, (max(when, self._now), self._seq, thread_id))

    def _step(self, thread: _Thread, now: int) -> None:
        phase = thread.phase
        if phase == "dispatch":
            self._do_dispatch(thread, now)
        elif phase == "op":
            self._do_op(thread, now)
        elif phase == "precommit":
            self._do_precommit(thread, now)
        elif phase == "commit":
            self._do_commit(thread, now)
        elif phase == "finish":
            self._do_finish(thread, now)
        elif phase in ("idle", "blocked", "gated", "crashed"):
            pass  # spurious wakeup; nothing to do
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown thread phase {phase!r}")

    def _handle_arrival(self, thread_id: int, txn: Transaction, now: int) -> None:
        thread = self._threads[thread_id]
        if thread.phase == "crashed":
            # The target failed after this arrival was queued; divert to
            # the coldest survivor so the transaction is never lost.
            survivors = [t for t in self._threads if t.phase != "crashed"]
            if not survivors:
                raise SimulationError(
                    f"arrival for crashed thread {thread_id} with no "
                    f"surviving threads at cycle {now}")
            thread = min(survivors, key=lambda t: (t.busy, t.id))
        thread.buffer.append(txn)
        if thread.phase == "idle":
            thread.phase = "dispatch"
            self._schedule(now, thread.id)

    def wake_gated(self, thread_id: int, now: int) -> None:
        """Resume a thread parked on the dispatch gate."""
        thread = self._threads[thread_id]
        if thread.phase != "gated":
            return
        thread.phase = "dispatch"
        self._schedule(now, thread_id)

    def _do_dispatch(self, thread: _Thread, now: int) -> None:
        if not thread.buffer:
            thread.phase = "idle"
            return
        if self.dispatch_gate is not None and not self.dispatch_gate.ready(
            thread.buffer[0]
        ):
            thread.phase = "gated"
            self.dispatch_gate.block(thread.id, thread.buffer[0])
            return
        txn = thread.buffer.popleft()
        cost = self.config.dispatch_cost
        prof = self.prof
        if prof is not None:
            prof.add_vcycles("engine.dispatch", cost)
        if self.dispatch_filter is not None:
            if prof is None:
                defer, filter_cost = self.dispatch_filter.filter(
                    thread.id, txn, now)
            else:
                prof.push("tsdefer.filter")
                defer, filter_cost = self.dispatch_filter.filter(
                    thread.id, txn, now)
                prof.pop()
                prof.add_vcycles("tsdefer.filter", filter_cost)
            cost += filter_cost
            if defer and thread.buffer:
                thread.buffer.append(txn)
                self._counters.deferrals += 1
                thread.busy += cost
                if self.tracer is not None:
                    self.tracer.emit(TraceEvent(now, thread.id, "defer",
                                                txn.tid, {"cost": cost}))
                self._schedule(now + cost, thread.id)
                return
        self._txn_seq += 1
        active = ActiveTxn(txn=txn, thread_id=thread.id, ts=self._txn_seq,
                           dispatched_at=now)
        if self._carry_attempts:
            # A requeued retry (crash recovery / defer_coldest migration)
            # keeps its abort count so retry statistics stay truthful.
            active.attempt = self._carry_attempts.pop(txn.tid, 0)
        active.attempt_start = now + cost
        thread.active = active
        thread.dispatch_began = now
        thread.phase = "op"
        if self.progress_hooks is not None:
            self.progress_hooks.on_dispatch(thread.id, txn, now)
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, thread.id, "dispatch", txn.tid,
                                        {"ts": active.ts,
                                         "ops": len(txn.ops)}))
        self._schedule(now + cost, thread.id)

    def _do_op(self, thread: _Thread, now: int) -> None:
        active = thread.active
        prof = self.prof
        if active.op_index == 0 and "_begun" not in active.ctx:
            # Attempt start: snapshot-taking protocols refresh here, so a
            # retry never re-reads from a stale snapshot.
            active.ctx["_begun"] = True
            if prof is None:
                self.protocol.begin(active, now)
            else:
                prof.push(self._sec_cc_begin)
                self.protocol.begin(active, now)
                prof.pop()
        op = active.txn.ops[active.op_index]
        if prof is None:
            result = self.protocol.on_access(active, op, now)
        else:
            prof.push(self._sec_cc_access)
            result = self.protocol.on_access(active, op, now)
            prof.pop()
        if result.status is AccessStatus.ABORT:
            self._abort(thread, now, reason=result.reason or "access conflict")
            return
        if result.status is AccessStatus.WAIT:
            active.blocked_since = now
            thread.phase = "blocked"
            if self.tracer is not None:
                self.tracer.emit(TraceEvent(
                    now, thread.id, "block", active.txn.tid,
                    {"op": active.op_index, "key": repr(op.record_key)}))
            return
        key = op.record_key
        if (not op.is_write and key not in active.write_buffer
                and key not in active.reads_log):
            # First read only: repeated reads return the transaction's
            # buffered copy (repeatable reads, as in DBx1000), so the
            # version observed first is the one the transaction saw.
            # Multi-version protocols report their snapshot's version.
            active.reads_log[key] = self.protocol.read_version(active, key)
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                now, thread.id, "op", active.txn.tid,
                {"op": active.op_index, "key": repr(key),
                 "rw": "w" if op.is_write else "r"}))
        active.op_index += 1
        if prof is not None:
            prof.add_vcycles("engine.op",
                             self.config.op_cost + self.config.cc_op_overhead)
        op_done = now + self.config.op_cost + self.config.cc_op_overhead
        if active.op_index < len(active.txn.ops):
            self._schedule(op_done, thread.id)
        else:
            # Runtime-skew lower bound: the transaction's logic takes at
            # least this long, so a retry re-executes (and re-pays) it —
            # which is precisely why "longer transactions inflict larger
            # conflict penalties" (Section 6.2).
            bound = active.attempt_start + active.txn.min_runtime_cycles
            thread.phase = "precommit"
            self._schedule(max(op_done, bound), thread.id)

    def _do_precommit(self, thread: _Thread, now: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, thread.id, "validate",
                                        thread.active.txn.tid))
        prof = self.prof
        if prof is None:
            ok = self.protocol.pre_commit(thread.active, now)
        else:
            prof.push(self._sec_cc_precommit)
            ok = self.protocol.pre_commit(thread.active, now)
            prof.pop()
        if not ok:
            self._abort(thread, now, reason="pre-commit lock conflict")
            return
        thread.phase = "commit"
        if prof is not None:
            prof.add_vcycles("engine.commit", self.config.commit_overhead)
        self._schedule(now + self.config.commit_overhead, thread.id)

    def _do_commit(self, thread: _Thread, now: int) -> None:
        active = thread.active
        prof = self.prof
        if prof is None:
            ok = self.protocol.on_commit(active, now)
        else:
            prof.push(self._sec_cc_validate)
            ok = self.protocol.on_commit(active, now)
            prof.pop()
        if not ok:
            self._abort(thread, now, reason="validation failed")
            return
        # Validation passed: install atomically at this instant.
        if self.record_history:
            reads = tuple(sorted(active.reads_log.items(), key=lambda kv: repr(kv[0])))
        if prof is None:
            self.protocol.install(active, now)
        else:
            prof.push(self._sec_cc_install)
            self.protocol.install(active, now)
            prof.pop()
        if self.apply_writes:
            self._apply_writes(active)
        if self.record_history:
            writes = tuple(
                sorted(((k, self.versions.get(k, 0)) for k in active.write_buffer),
                       key=lambda kv: repr(kv[0]))
            )
            self.history.append(
                CommittedRecord(active.txn.tid, now, reads, writes,
                                start_time=active.attempt_start)
            )
        self._counters.committed += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, thread.id, "commit",
                                        active.txn.tid,
                                        {"writes": len(active.write_buffer)}))
        thread.phase = "finish"
        stall = active.txn.io_delay_cycles
        if self.faults is not None:
            stall += self.faults.io_extra(now)
        if prof is not None:
            prof.add_vcycles("engine.finish", stall)
        self._schedule(now + stall, thread.id)

    def _do_finish(self, thread: _Thread, now: int) -> None:
        active = thread.active
        # Strict through the commit stall: locks release only now.
        if self.prof is None:
            self.protocol.cleanup(active, True, now)
        else:
            self.prof.push(self._sec_cc_cleanup)
            self.protocol.cleanup(active, True, now)
            self.prof.pop()
        if self.progress_hooks is not None:
            self.progress_hooks.on_commit(thread.id, active.txn, now)
        if self.faults is not None:
            self.faults.note_recovery(thread.id, now)
        thread.busy += now - thread.dispatch_began
        born = self._arrived_at.get(active.txn.tid, active.dispatched_at)
        latency = now - born
        self._latencies.append(latency)
        self._retry_counts.append(active.attempt)
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(now, thread.id, "finish",
                                        active.txn.tid,
                                        {"attempts": active.attempt,
                                         "latency": latency}))
        thread.active = None
        thread.phase = "dispatch"
        if thread.crash_pending:
            # A crash fired while this transaction was past its commit
            # point; the install completed, now the thread fail-stops.
            thread.crash_pending = False
            self._crash_now(thread, now)
            return
        self._schedule(now, thread.id)

    def _abort(self, thread: _Thread, now: int, reason: str = "") -> None:
        prof = self.prof
        if prof is None:
            self._abort_now(thread, now, reason)
            return
        # Wrapper keeps the section stack balanced across the body's
        # multiple return paths.
        prof.push("engine.abort")
        self._abort_now(thread, now, reason)
        prof.pop()

    def _abort_now(self, thread: _Thread, now: int, reason: str = "") -> None:
        active = thread.active
        prof = self.prof
        if prof is None:
            self.protocol.cleanup(active, False, now)
        else:
            prof.push(self._sec_cc_cleanup)
            self.protocol.cleanup(active, False, now)
            prof.pop()
        self._counters.aborts += 1
        self._counters.wasted_cycles += now - active.attempt_start
        active.attempt += 1
        if active.attempt > MAX_RETRIES:
            raise SimulationError(
                f"transaction {active.txn} exceeded {MAX_RETRIES} retries"
            )
        decision = self.restart_policy.on_abort(active, now)
        restart = decision.restart_at
        target = decision.requeue_thread
        if self.tracer is not None:
            attrs = {"attempt": active.attempt, "reason": reason,
                     "restart": restart}
            if target is not None:
                attrs["requeue"] = target
            self.tracer.emit(TraceEvent(now, thread.id, "abort",
                                        active.txn.tid, attrs))
        if target is not None and target != thread.id:
            # Migrate the retry: the transaction travels to the target
            # thread's buffer with its attempt count and birth time, and
            # this thread moves on to its next buffered transaction.
            self._carry_attempts[active.txn.tid] = active.attempt
            self._arrived_at.setdefault(active.txn.tid, active.dispatched_at)
            if self.faults is not None:
                self.faults.retarget_recovery(thread.id, target)
            thread.busy += now - thread.dispatch_began
            thread.active = None
            thread.phase = "dispatch"
            self._requeue(restart, target, active.txn)
            self._schedule(now, thread.id)
            return
        if prof is not None:
            prof.add_vcycles("engine.abort", max(0, restart - now))
        active.reset_attempt(restart)
        thread.phase = "op"
        self._schedule(restart, thread.id)

    # ------------------------------------------------------------------
    # fault application (repro.faults)
    # ------------------------------------------------------------------
    def _apply_fault(self, ev: FaultEvent, now: int) -> None:
        target = self._threads[ev.thread] if ev.thread >= 0 else None
        tid = (target.active.txn.tid
               if target is not None and target.active is not None else -1)
        if ev.kind == "spurious_abort":
            applied = self._fault_abort(target, now)
        elif ev.kind == "stall":
            applied = self._fault_stall(target, now, ev.duration)
        elif ev.kind == "crash":
            applied = self._fault_crash(target, now)
        else:
            # Windowed kinds (io_spike, probe_corruption) apply passively
            # through io_extra() / probe_corrupt() point queries.
            applied = True
        self.faults.record(ev, applied, now)
        if self.tracer is not None:
            self.tracer.emit(TraceEvent(
                now, max(ev.thread, 0), "fault", tid,
                {"fault": ev.kind, "applied": applied,
                 "duration": ev.duration}))

    def _fault_abort(self, thread: _Thread, now: int) -> bool:
        """Poison whatever ``thread`` is executing; it retries as usual."""
        active = thread.active
        if active is None or thread.phase not in ("op", "blocked", "precommit"):
            return False
        if thread.phase == "blocked":
            # Leave the lock's waiter queue *before* cleanup releases our
            # held locks, so a grant can never pick the aborted waiter.
            cancel = getattr(self.protocol, "cancel_wait", None)
            if cancel is not None:
                cancel(active, active.txn.ops[active.op_index])
            self._counters.blocked_cycles += now - active.blocked_since
        self._abort(thread, now, reason="injected: spurious abort")
        return True

    def _fault_stall(self, thread: _Thread, now: int, duration: int) -> bool:
        """Delay the thread's next step by ``duration`` cycles."""
        if thread.phase in ("idle", "blocked", "gated", "crashed"):
            return False
        self._schedule(thread.pending_at + duration, thread.id)
        return True

    def _fault_crash(self, thread: _Thread, now: int) -> bool:
        """Fail-stop ``thread`` for the remainder of the phase."""
        if thread.phase == "crashed":
            return False
        if thread.phase in ("commit", "finish"):
            # Past the commit point: the install is already durable in
            # this model, so let it complete and fail stop right after
            # (otherwise a committed transaction would re-execute).
            thread.crash_pending = True
            return True
        self._crash_now(thread, now)
        return True

    def _crash_now(self, thread: _Thread, now: int) -> None:
        survivors = [t for t in self._threads
                     if t.id != thread.id and t.phase != "crashed"]
        if not survivors:
            raise SimulationError(
                f"fault plan crashed every thread by cycle {now}")
        survivors.sort(key=lambda t: (t.busy, t.id))
        active = thread.active
        if active is not None:
            if thread.phase == "blocked":
                cancel = getattr(self.protocol, "cancel_wait", None)
                if cancel is not None:
                    cancel(active, active.txn.ops[active.op_index])
                self._counters.blocked_cycles += now - active.blocked_since
            self.protocol.cleanup(active, False, now)
            self._counters.aborts += 1
            self._counters.wasted_cycles += now - active.attempt_start
            active.attempt += 1
            self._carry_attempts[active.txn.tid] = active.attempt
            self._arrived_at.setdefault(active.txn.tid, active.dispatched_at)
            thread.busy += now - thread.dispatch_began
            # The in-flight transaction restarts on the coldest survivor
            # after the abort penalty; buffered ones move immediately.
            if self.faults is not None:
                self.faults.retarget_recovery(thread.id, survivors[0].id)
            self._requeue(now + self.config.abort_penalty, survivors[0].id,
                          active.txn)
            thread.active = None
        moved = list(thread.buffer)
        thread.buffer.clear()
        for i, txn in enumerate(moved):
            self._requeue(now, survivors[i % len(survivors)].id, txn)
        thread.phase = "crashed"
        thread.pending_seq = -1

    def _apply_writes(self, active: ActiveTxn) -> None:
        inserted = {
            op.record_key for op in active.txn.ops if op.kind is OpKind.INSERT
        }
        for key, value in active.write_buffer.items():
            if key in inserted:
                table, pk = key
                t = self.db.table(table)
                if pk in t:
                    t.get(pk).committed_write(value, active.txn.tid)
                else:
                    t.insert(pk, value, writer_tid=active.txn.tid)
            else:
                self.db.ensure(key).committed_write(value, active.txn.tid)
