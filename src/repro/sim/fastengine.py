"""Flattened fast-path event loop: same simulation, fewer Python cycles.

:class:`FastEngine` subclasses :class:`~repro.sim.engine.MulticoreEngine`
and replaces only :meth:`~repro.sim.engine.MulticoreEngine._drain` — the
inner event loop — with a version built for throughput:

* **Hot-path inlining.**  The operation phase (the vast majority of all
  events) runs inline with every attribute lookup hoisted into locals;
  the rare phases (dispatch, precommit, commit, finish, aborts, faults,
  arrivals) delegate to the parent's handlers, so their semantics can
  never drift from the reference engine.
* **Tuple-ized op streams.**  Each transaction's operation sequence is
  flattened once into ``(op, key, is_write, value)`` tuples, cached on
  the transaction, so per-access key derivation is a tuple unpack.
* **Batched virtual-clock advance.**  When the next event in the heap is
  strictly later than a thread's next operation completion, that
  operation cannot interleave with anything — the engine advances the
  clock directly and skips the heap round-trip.  The strict inequality
  preserves the reference tie-break (an equal-time event already in the
  heap holds a smaller sequence number and must pop first), and batching
  is disabled outright when a fault plan is enabled, because injected
  faults are polled against the heap minimum between pops.
* **Protocol fast path.**  For plain OCC (exactly ``OccProtocol``, not a
  subclass) the access hook is inlined; every other protocol goes
  through the same ``on_access`` call the reference engine makes.

Equivalence contract: identical RNG draw streams, virtual-clock event
times, fault injection points, trace spans, commit histories, and
therefore byte-identical artifacts.  ``tests/sim/test_engine_differential.py``
enforces this across the full protocol × workload × fault grid, and the
golden digests in ``tests/bench/test_regression_series.py`` pin both
engines to the same Series payloads.

Profiling: a profiled fast run pushes the same section names as the
reference engine (``engine.op``, ``cc.<proto>.access``, ...).  A batched
advance charges its wall time to one ``engine.op`` push and restores the
per-op call count via :meth:`~repro.obs.prof.Profiler.count`, and
virtual-cycle attribution (`add_vcycles`) is per-op identical, so
``docs/perf.md`` tables stay comparable across engines.
"""

from __future__ import annotations

import heapq

from ..cc.base import AccessStatus
from ..cc.occ import OccProtocol
from ..common.config import SimConfig
from ..obs.tracing import TraceEvent
from .engine import MulticoreEngine, _PHASE_SECTIONS


class FastEngine(MulticoreEngine):
    """Drop-in engine with a flattened, batching event loop."""

    @staticmethod
    def _flat_ops(txn) -> tuple:
        """``(op, record_key, is_write, value)`` per op, cached on the txn."""
        flat = txn.__dict__.get("_flat_ops")
        if flat is None:
            flat = tuple(
                (op, op.record_key, op.is_write, op.value) for op in txn.ops
            )
            txn.__dict__["_flat_ops"] = flat
        return flat

    def _drain(self, start_time: int) -> int:  # noqa: C901 - deliberate
        events = self._events
        threads = self._threads
        arrival_payload = self._arrival_payload
        heappop = heapq.heappop
        heappush = heapq.heappush
        config = self.config
        protocol = self.protocol
        on_access = protocol.on_access
        read_version = protocol.read_version
        begin = protocol.begin
        tracer = self.tracer
        prof = self.prof
        faults = self.faults
        poll_faults = faults is not None
        # Batched advance would step over the fault poll at the loop head
        # (pop_due against the heap minimum), so an enabled plan pins the
        # loop to the reference one-event-per-op cadence.
        batching = not (poll_faults and faults.enabled)
        op_total = config.op_cost + config.cc_op_overhead
        # Inline the OCC access hook only for exactly OccProtocol; any
        # subclass (Silo, TicToc, ...) overrides behaviour and takes the
        # generic call.  Under a profiler the generic path is kept too so
        # cc.<proto>.access wall time is attributed as in the reference.
        occ_fast = type(protocol) is OccProtocol and prof is None
        versions_get = self.versions.get
        OK = AccessStatus.OK
        ABORT = AccessStatus.ABORT
        sec_access = self._sec_cc_access
        sec_begin = self._sec_cc_begin

        end_time = start_time
        if prof is not None:
            prof.push("engine.loop")
        while events:
            if poll_faults:
                ev = faults.pop_due(events[0][0])
                if ev is not None:
                    self._now = max(ev.when, self._now)
                    if prof is None:
                        self._apply_fault(ev, self._now)
                    else:
                        prof.push("faults.apply")
                        self._apply_fault(ev, self._now)
                        prof.pop()
                    continue
            when, seq, thread_id = heappop(events)
            self._now = when
            if when > end_time:
                end_time = when
            if arrival_payload:
                payload = arrival_payload.pop(seq, None)
                if payload is not None:
                    if prof is None:
                        self._handle_arrival(payload[0], payload[1], when)
                    else:
                        prof.push("engine.arrival")
                        self._handle_arrival(payload[0], payload[1], when)
                        prof.pop()
                    continue
            thread = threads[thread_id]
            if seq != thread.pending_seq:
                continue
            phase = thread.phase
            if phase != "op":
                if prof is None:
                    self._step(thread, when)
                else:
                    prof.push(_PHASE_SECTIONS[phase])
                    self._step(thread, when)
                    prof.pop()
                continue

            # ---- inlined op phase (the hot path) ----------------------
            active = thread.active
            txn = active.txn
            flat = txn.__dict__.get("_flat_ops")
            if flat is None:
                flat = self._flat_ops(txn)
            nops = len(flat)
            now = when
            write_buffer = active.write_buffer
            reads_log = active.reads_log
            observed = active.observed
            if prof is not None:
                prof.push("engine.op")
            while True:
                idx = active.op_index
                if idx == 0 and "_begun" not in active.ctx:
                    # Attempt start: snapshot-taking protocols refresh
                    # here, so a retry never re-reads a stale snapshot.
                    active.ctx["_begun"] = True
                    if prof is None:
                        begin(active, now)
                    else:
                        prof.push(sec_begin)
                        begin(active, now)
                        prof.pop()
                op, key, is_write, value = flat[idx]
                if occ_fast:
                    # OccProtocol.on_access, verbatim: record the
                    # committed version at first touch, buffer writes.
                    if key not in observed:
                        observed[key] = versions_get(key, 0)
                    if is_write:
                        write_buffer[key] = value
                else:
                    if prof is None:
                        result = on_access(active, op, now)
                    else:
                        prof.push(sec_access)
                        result = on_access(active, op, now)
                        prof.pop()
                    status = result.status
                    if status is not OK:
                        if status is ABORT:
                            self._abort(thread, now,
                                        reason=result.reason
                                        or "access conflict")
                        else:  # WAIT
                            active.blocked_since = now
                            thread.phase = "blocked"
                            if tracer is not None:
                                tracer.emit(TraceEvent(
                                    now, thread_id, "block", txn.tid,
                                    {"op": idx, "key": repr(key)}))
                        break
                if (not is_write and key not in write_buffer
                        and key not in reads_log):
                    # First read only (repeatable reads, as in DBx1000).
                    # On the OCC fast path the version recorded just
                    # above *is* read_version's answer: a qualifying
                    # first read is always the key's first touch.
                    if occ_fast:
                        reads_log[key] = observed[key]
                    else:
                        reads_log[key] = read_version(active, key)
                if tracer is not None:
                    tracer.emit(TraceEvent(
                        now, thread_id, "op", txn.tid,
                        {"op": idx, "key": repr(key),
                         "rw": "w" if is_write else "r"}))
                active.op_index = idx = idx + 1
                if prof is not None:
                    prof.add_vcycles("engine.op", op_total)
                op_done = now + op_total
                if idx < nops:
                    if batching and (not events or events[0][0] > op_done):
                        # Nothing can interleave before this thread's
                        # next op completes: jump the clock, skip the
                        # heap.  (A tie would pop the other event first,
                        # hence the strict inequality.)
                        self._now = now = op_done
                        if prof is not None:
                            prof.count("engine.op")
                        continue
                    # _schedule, inlined (it runs once per op event).
                    # self._seq is re-read each time because the rare
                    # phases schedule through the parent helpers.
                    seq_new = self._seq + 1
                    self._seq = seq_new
                    thread.pending_seq = seq_new
                    thread.pending_at = op_done
                    heappush(events, (op_done, seq_new, thread_id))
                    break
                bound = active.attempt_start + txn.min_runtime_cycles
                thread.phase = "precommit"
                if op_done < bound:
                    op_done = bound
                seq_new = self._seq + 1
                self._seq = seq_new
                thread.pending_seq = seq_new
                thread.pending_at = op_done
                heappush(events, (op_done, seq_new, thread_id))
                break
            if prof is not None:
                prof.pop()
        if prof is not None:
            prof.pop()
        return end_time


def make_engine(config: SimConfig, **kwargs) -> MulticoreEngine:
    """Construct the engine implementation ``config.engine`` selects."""
    cls = FastEngine if config.engine == "fast" else MulticoreEngine
    return cls(config, **kwargs)
