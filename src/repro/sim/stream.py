"""Open-system driving: transactions arriving over time (Section 2.1).

The paper's unbundled mode has transactions "coming unbundled in the
input buffer" and "periodically flushed to the thread-local buffers" by a
lightweight assigner.  This module turns a workload into a timed arrival
stream (Poisson by default) and runs it through the engine's arrival
mode, so latency includes queueing delay and TsDEFER operates on buffers
that fill as the system runs — the closest the simulator gets to a live
OLTP front door.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..common.config import CYCLES_PER_SECOND
from ..common.rng import Rng
from ..common.stats import percentile
from ..txn.transaction import Transaction
from .engine import MulticoreEngine, PhaseResult

#: Assignment strategies :func:`poisson_arrivals` understands.
ARRIVAL_ASSIGNMENTS = ("round_robin", "random", "least_loaded")


def pick_least_loaded(loads: Sequence[float]) -> int:
    """Index of the smallest load, lowest index winning ties."""
    return min(range(len(loads)), key=lambda i: (loads[i], i))


def assign_least_loaded(
    transactions: Sequence[Transaction],
    num_threads: int,
    load: Optional[Callable[[Transaction], float]] = None,
) -> list[list[Transaction]]:
    """Deal transactions to the thread with the least accumulated load.

    ``load`` maps a transaction to its weight (operation count by
    default, the only signal an admission path has before execution).
    With uniform weights this degenerates to round-robin; with skewed
    weights it keeps the heaviest buffers from stacking up on one
    thread.  Used by the serving subsystem's admission path
    (:mod:`repro.serve`) and by :func:`poisson_arrivals`.
    """
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    weigh = load or (lambda t: t.num_ops)
    buffers: list[list[Transaction]] = [[] for _ in range(num_threads)]
    loads = [0.0] * num_threads
    for txn in transactions:
        i = pick_least_loaded(loads)
        buffers[i].append(txn)
        loads[i] += weigh(txn)
    return buffers


def poisson_arrivals(
    transactions: Sequence[Transaction],
    offered_tps: float,
    num_threads: int,
    rng: Optional[Rng] = None,
    assignment: str = "round_robin",
) -> list[tuple[int, int, Transaction]]:
    """Timed (cycle, thread, txn) arrivals at an offered load in txn/s.

    Inter-arrival gaps are exponential with mean
    ``CYCLES_PER_SECOND / offered_tps``; assignment is round-robin (the
    engine default), uniformly random, or least-loaded (each arrival
    goes to the thread with the smallest total assigned work so far).
    Returned cycles are guaranteed non-decreasing even after the float
    clock is truncated to integer cycles.
    """
    if offered_tps <= 0:
        raise ValueError(f"offered_tps must be positive, got {offered_tps}")
    if assignment not in ARRIVAL_ASSIGNMENTS:
        raise ValueError(f"unknown assignment {assignment!r}; "
                         f"choose from {ARRIVAL_ASSIGNMENTS}")
    rng = rng or Rng(0)
    mean_gap = CYCLES_PER_SECOND / offered_tps
    arrivals: list[tuple[int, int, Transaction]] = []
    loads = [0.0] * num_threads
    clock = 0.0
    when = 0
    for i, txn in enumerate(transactions):
        clock += -mean_gap * math.log(max(rng.random(), 1e-12))
        # int() truncation is monotone, but clamp anyway so the arrival
        # sequence the engine heap sees can never run backwards even if
        # the float accumulation ever loses a sub-cycle increment.
        when = max(when, int(clock))
        if assignment == "random":
            thread = rng.randint(0, num_threads - 1)
        elif assignment == "least_loaded":
            thread = pick_least_loaded(loads)
            loads[thread] += txn.num_ops
        else:
            thread = i % num_threads
        arrivals.append((when, thread, txn))
    return arrivals


@dataclass(frozen=True)
class OpenSystemResult:
    """Measurements of an open-system run (latency includes queueing)."""

    phase: PhaseResult
    offered_tps: float
    #: Virtual time of the last arrival; work after it is backlog drain.
    last_arrival: int = 0

    @property
    def completed_tps(self) -> float:
        if self.phase.makespan <= 0:
            return 0.0
        return self.phase.counters.committed * CYCLES_PER_SECOND / self.phase.makespan

    @property
    def backlog_drain_cycles(self) -> int:
        """How long past the last arrival the system kept working."""
        return max(0, self.phase.end_time - self.last_arrival)

    @property
    def saturated(self) -> bool:
        """True when the system could not keep up with the offered load.

        Two signals, either of which marks saturation: completed
        throughput fell well short of the offered rate, or a backlog
        lingered long after the final arrival (with moderate overload the
        completed rate can still look close to offered while every
        transaction queues).
        """
        if self.completed_tps < 0.85 * self.offered_tps:
            return True
        p50 = self.latency_percentile(0.5)
        return self.backlog_drain_cycles > max(10 * p50, 1)

    def latency_percentile(self, q: float) -> int:
        return percentile(sorted(self.phase.latencies), q)

    def to_dict(self) -> dict:
        """The ``open_system`` artifact section (see repro.obs.artifact).

        Latency percentiles here *include queueing delay* — they are
        measured from the arrival instant, not from dispatch — which is
        what distinguishes them from the service-latency percentiles of
        the ``run`` section.
        """
        lat = sorted(self.phase.latencies)
        return {
            "offered_tps": float(self.offered_tps),
            "completed_tps": self.completed_tps,
            "saturated": self.saturated,
            "last_arrival": self.last_arrival,
            "backlog_drain_cycles": self.backlog_drain_cycles,
            "latency_p50": percentile(lat, 0.50),
            "latency_p95": percentile(lat, 0.95),
            "latency_p99": percentile(lat, 0.99),
        }


def run_open_system(
    engine: MulticoreEngine,
    transactions: Sequence[Transaction],
    offered_tps: float,
    rng: Optional[Rng] = None,
    assignment: str = "round_robin",
) -> OpenSystemResult:
    """Drive the engine with a Poisson arrival stream and measure."""
    arrivals = poisson_arrivals(transactions, offered_tps,
                                engine.num_threads, rng=rng,
                                assignment=assignment)
    phase = engine.run([[] for _ in range(engine.num_threads)],
                       arrivals=arrivals)
    return OpenSystemResult(phase=phase, offered_tps=offered_tps,
                            last_arrival=arrivals[-1][0] if arrivals else 0)
