"""Open-system driving: transactions arriving over time (Section 2.1).

The paper's unbundled mode has transactions "coming unbundled in the
input buffer" and "periodically flushed to the thread-local buffers" by a
lightweight assigner.  This module turns a workload into a timed arrival
stream (Poisson by default) and runs it through the engine's arrival
mode, so latency includes queueing delay and TsDEFER operates on buffers
that fill as the system runs — the closest the simulator gets to a live
OLTP front door.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..common.config import CYCLES_PER_SECOND
from ..common.rng import Rng
from ..common.stats import percentile
from ..txn.transaction import Transaction
from .engine import MulticoreEngine, PhaseResult


def poisson_arrivals(
    transactions: Sequence[Transaction],
    offered_tps: float,
    num_threads: int,
    rng: Optional[Rng] = None,
    assignment: str = "round_robin",
) -> list[tuple[int, int, Transaction]]:
    """Timed (cycle, thread, txn) arrivals at an offered load in txn/s.

    Inter-arrival gaps are exponential with mean
    ``CYCLES_PER_SECOND / offered_tps``; assignment is round-robin (the
    engine default) or uniformly random.
    """
    if offered_tps <= 0:
        raise ValueError(f"offered_tps must be positive, got {offered_tps}")
    rng = rng or Rng(0)
    mean_gap = CYCLES_PER_SECOND / offered_tps
    arrivals: list[tuple[int, int, Transaction]] = []
    clock = 0.0
    for i, txn in enumerate(transactions):
        clock += -mean_gap * math.log(max(rng.random(), 1e-12))
        if assignment == "random":
            thread = rng.randint(0, num_threads - 1)
        else:
            thread = i % num_threads
        arrivals.append((int(clock), thread, txn))
    return arrivals


@dataclass(frozen=True)
class OpenSystemResult:
    """Measurements of an open-system run (latency includes queueing)."""

    phase: PhaseResult
    offered_tps: float
    #: Virtual time of the last arrival; work after it is backlog drain.
    last_arrival: int = 0

    @property
    def completed_tps(self) -> float:
        if self.phase.makespan <= 0:
            return 0.0
        return self.phase.counters.committed * CYCLES_PER_SECOND / self.phase.makespan

    @property
    def backlog_drain_cycles(self) -> int:
        """How long past the last arrival the system kept working."""
        return max(0, self.phase.end_time - self.last_arrival)

    @property
    def saturated(self) -> bool:
        """True when the system could not keep up with the offered load.

        Two signals, either of which marks saturation: completed
        throughput fell well short of the offered rate, or a backlog
        lingered long after the final arrival (with moderate overload the
        completed rate can still look close to offered while every
        transaction queues).
        """
        if self.completed_tps < 0.85 * self.offered_tps:
            return True
        p50 = self.latency_percentile(0.5)
        return self.backlog_drain_cycles > max(10 * p50, 1)

    def latency_percentile(self, q: float) -> int:
        return percentile(sorted(self.phase.latencies), q)


def run_open_system(
    engine: MulticoreEngine,
    transactions: Sequence[Transaction],
    offered_tps: float,
    rng: Optional[Rng] = None,
    assignment: str = "round_robin",
) -> OpenSystemResult:
    """Drive the engine with a Poisson arrival stream and measure."""
    arrivals = poisson_arrivals(transactions, offered_tps,
                                engine.num_threads, rng=rng,
                                assignment=assignment)
    phase = engine.run([[] for _ in range(engine.num_threads)],
                       arrivals=arrivals)
    return OpenSystemResult(phase=phase, offered_tps=offered_tps,
                            last_arrival=arrivals[-1][0] if arrivals else 0)
