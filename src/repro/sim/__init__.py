"""Discrete-event multicore engine, histories, and warm-up dry-runs."""

from .engine import (
    MAX_RETRIES,
    ActiveTxn,
    CommittedRecord,
    DispatchFilter,
    MulticoreEngine,
    PhaseResult,
    ProgressHooks,
)
from .fastengine import FastEngine, make_engine
from .history import (
    assert_serializable,
    assert_snapshot_consistent,
    find_cycle,
    is_serializable,
    serialization_graph,
    snapshot_violations,
)
from .stream import (
    ARRIVAL_ASSIGNMENTS,
    OpenSystemResult,
    assign_least_loaded,
    pick_least_loaded,
    poisson_arrivals,
    run_open_system,
)
from .warmup import dry_run_cost, serial_makespan, warm_up_history

__all__ = [
    "ARRIVAL_ASSIGNMENTS",
    "MAX_RETRIES",
    "ActiveTxn",
    "assign_least_loaded",
    "CommittedRecord",
    "DispatchFilter",
    "FastEngine",
    "make_engine",
    "MulticoreEngine",
    "OpenSystemResult",
    "PhaseResult",
    "ProgressHooks",
    "pick_least_loaded",
    "poisson_arrivals",
    "run_open_system",
    "assert_serializable",
    "assert_snapshot_consistent",
    "dry_run_cost",
    "snapshot_violations",
    "find_cycle",
    "is_serializable",
    "serial_makespan",
    "serialization_graph",
    "warm_up_history",
]
