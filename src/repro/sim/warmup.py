"""Warm-up dry-run: the engine-side source of cost histories.

TsPAR's default estimator "uses the warm-up dry-run trails of DBx1000 as
the source of histories" (Section 6.1).  A dry-run executes transactions
serially with writes suppressed, so the observed time is the abort-free
serial cost minus commit-time I/O (the stall never happens because no log
is flushed during a dry-run).  Optional multiplicative noise models
measurement jitter between the warm-up and the measured run.
"""

from __future__ import annotations

from typing import Iterable

from ..common.config import SimConfig
from ..common.rng import Rng
from ..txn.cost import HistoryCostModel, OpCountCostModel, serial_cost_cycles
from ..txn.transaction import Transaction


def dry_run_cost(txn: Transaction, sim: SimConfig) -> int:
    """Serial abort-free cost excluding the commit I/O stall."""
    return serial_cost_cycles(txn, sim) - txn.io_delay_cycles


def warm_up_history(
    transactions: Iterable[Transaction],
    sim: SimConfig,
    noise: float = 0.05,
    rng: Rng | None = None,
) -> HistoryCostModel:
    """Run the warm-up dry-run and return the populated history model."""
    rng = rng or Rng(sim.seed + 7)
    model = HistoryCostModel(fallback=OpCountCostModel(sim))
    for txn in transactions:
        observed = dry_run_cost(txn, sim)
        if noise > 0:
            observed = max(1, int(observed * (1.0 + rng.uniform(-noise, noise))))
        model.record(txn, observed)
    return model


def serial_makespan(transactions: Iterable[Transaction], sim: SimConfig) -> int:
    """Total single-thread execution time; a lower-bound sanity figure."""
    return sum(serial_cost_cycles(t, sim) for t in transactions)
