"""Serializability oracle over committed-execution histories.

The engine (with ``record_history=True``) logs, for every committed
transaction, the version of each record it read and the version each of
its writes installed.  From that we build the direct serialization graph:

* **wr**: the installer of version v precedes every reader of v,
* **ww**: the installer of v precedes the installer of v+1,
* **rw** (anti-dependency): every reader of v precedes the installer
  of v+1.

The execution is conflict-serializable iff this graph is acyclic — the
end-to-end correctness check the integration and property tests run
against every CC protocol, with and without TSKD.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable, Sequence

from .engine import CommittedRecord


def serialization_graph(history: Sequence[CommittedRecord]) -> dict[int, set[int]]:
    """Adjacency (tid -> successor tids) of the direct serialization graph."""
    writer_of: dict = defaultdict(dict)  # key -> {version: tid}
    readers_of: dict = defaultdict(lambda: defaultdict(set))  # key -> {version: {tid}}
    for rec in history:
        for key, version in rec.writes:
            writer_of[key][version] = rec.tid
        for key, version in rec.reads:
            readers_of[key][version].add(rec.tid)

    adj: dict[int, set[int]] = defaultdict(set)
    for rec in history:
        adj.setdefault(rec.tid, set())

    for key, versions in writer_of.items():
        ordered = sorted(versions)
        for v in ordered:
            writer = versions[v]
            # wr edges: writer of v -> readers of v
            for reader in readers_of[key].get(v, ()):
                if reader != writer:
                    adj[writer].add(reader)
        # ww edges between consecutive installers
        for a, b in zip(ordered, ordered[1:]):
            if versions[a] != versions[b]:
                adj[versions[a]].add(versions[b])
    for key, by_version in readers_of.items():
        for v, readers in by_version.items():
            nxt = writer_of[key].get(v + 1)
            if nxt is None:
                continue
            for reader in readers:
                if reader != nxt:
                    adj[reader].add(nxt)  # rw anti-dependency
    return dict(adj)


def find_cycle(adj: dict[int, set[int]]) -> list[int] | None:
    """A cycle in the graph as a node list, or None if acyclic (Kahn)."""
    indeg: dict[int, int] = {n: 0 for n in adj}
    for n, succs in adj.items():
        for s in succs:
            indeg[s] = indeg.get(s, 0) + 1
    queue = deque(n for n, d in indeg.items() if d == 0)
    seen = 0
    while queue:
        n = queue.popleft()
        seen += 1
        for s in adj.get(n, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                queue.append(s)
    if seen == len(indeg):
        return None
    # Extract one concrete cycle from the residual subgraph for
    # diagnostics, via iterative DFS with colouring (a residual node's
    # forward walk may dead-end outside the residual, so a plain walk is
    # not enough).
    residual = {n for n, d in indeg.items() if d > 0}
    color: dict[int, int] = {}  # 0/absent=white, 1=grey, 2=black
    parent: dict[int, int] = {}
    for start in residual:
        if color.get(start):
            continue
        stack = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in residual:
                    continue
                c = color.get(succ, 0)
                if c == 0:
                    color[succ] = 1
                    parent[succ] = node
                    stack.append((succ, iter(sorted(adj.get(succ, ())))))
                    advanced = True
                    break
                if c == 1:  # back edge: reconstruct the cycle
                    cycle = [succ, node]
                    walk = node
                    while walk != succ:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = 2
                stack.pop()
    # Kahn said there is a cycle; DFS must have found one.
    raise AssertionError("inconsistent cycle detection")  # pragma: no cover


def snapshot_violations(history: Sequence[CommittedRecord]) -> list[str]:
    """Check a history against snapshot isolation's two guarantees.

    * **Snapshot reads**: every read observes exactly the versions
      committed before the transaction's (attempt's) start.
    * **First committer wins**: two committed transactions writing a
      common key must not overlap in [start, commit].

    Write skew is *not* flagged — SI permits it; use
    :func:`is_serializable` for the stronger check.  Returns a list of
    human-readable violation descriptions (empty = SI-consistent).
    Intended for histories produced by the MVCC protocol, whose reads
    come from a begin-time snapshot.
    """
    violations: list[str] = []
    commits_of_key: dict = defaultdict(list)  # key -> [(version, record)]
    for rec in history:
        for key, version in rec.writes:
            commits_of_key[key].append((version, rec))
    for key in commits_of_key:
        commits_of_key[key].sort(key=lambda vr: vr[0])

    # First committer wins: version-consecutive writers must not overlap.
    for key, versioned in commits_of_key.items():
        for (_v1, a), (_v2, b) in zip(versioned, versioned[1:]):
            if b.start_time < a.commit_time and a.start_time < b.commit_time:
                violations.append(
                    f"FCW violation on {key}: T{a.tid}"
                    f"[{a.start_time},{a.commit_time}] overlaps "
                    f"T{b.tid}[{b.start_time},{b.commit_time}]"
                )

    # Snapshot reads: observed version == number of commits before start.
    for rec in history:
        for key, version in rec.reads:
            strictly_before = sum(
                1 for _v, w in commits_of_key.get(key, ())
                if w.commit_time < rec.start_time
            )
            up_to = sum(
                1 for _v, w in commits_of_key.get(key, ())
                if w.commit_time <= rec.start_time
            )
            if not strictly_before <= version <= up_to:
                violations.append(
                    f"non-snapshot read by T{rec.tid} of {key}: saw v{version}, "
                    f"snapshot at {rec.start_time} implies "
                    f"v{strictly_before}..v{up_to}"
                )
    return violations


def assert_snapshot_consistent(history: Iterable[CommittedRecord]) -> None:
    """Raise AssertionError when the history violates snapshot isolation."""
    found = snapshot_violations(list(history))
    assert not found, "; ".join(found[:3])


def is_serializable(history: Iterable[CommittedRecord]) -> bool:
    """True when the committed history is conflict-serializable."""
    return find_cycle(serialization_graph(list(history))) is None


def assert_serializable(history: Iterable[CommittedRecord]) -> None:
    """Raise AssertionError with the offending cycle when not serializable."""
    cycle = find_cycle(serialization_graph(list(history)))
    assert cycle is None, f"non-serializable execution; dependency cycle {cycle}"
