"""Setup shim: enables offline `pip install -e .` via the legacy editable path."""

from setuptools import setup

setup()
