"""Parallel executor scaling: the same sweep at increasing --jobs.

Measures wall-clock for a quick-scale figure regeneration at jobs 1, 2
and 4, asserts every run is bit-identical (the determinism contract of
docs/parallel.md), and records the honest numbers — including the core
count, since speedup > 1 requires at least as many physical cores as
workers — to ``benchmarks/results/parallel_speedup.txt``.
"""

from __future__ import annotations

import os
import time

from repro.bench.experiments import QUICK, run_experiment
from repro.bench.parallel import run_experiment_cells

EXP_ID = "fig4a"
JOBS = (1, 2, 4)


def test_parallel_speedup_recorded(results_dir):
    timings: dict[int, float] = {}
    payloads: dict[int, dict] = {}
    for jobs in JOBS:
        t0 = time.perf_counter()
        series, report = run_experiment_cells(EXP_ID, QUICK, jobs=jobs)
        timings[jobs] = time.perf_counter() - t0
        payloads[jobs] = series.to_payload()
        assert report.failed == []
        assert report.executed == report.total_cells
    for jobs in JOBS[1:]:
        assert payloads[jobs] == payloads[1], f"jobs={jobs} diverged"

    base = timings[1]
    lines = [
        f"parallel executor scaling: {EXP_ID} at quick scale "
        f"({len(payloads[1]['cells'])} series cells)",
        f"machine: {os.cpu_count()} cpu core(s)",
    ]
    for jobs in JOBS:
        lines.append(f"  --jobs {jobs}: {timings[jobs]:6.2f}s"
                     f"  (speedup x{base / timings[jobs]:.2f})")
    lines.append("all runs bit-identical; speedup > 1 requires at least "
                 "as many physical cores as --jobs (spawn + IPC overhead "
                 "dominates on fewer).")
    out = results_dir / "parallel_speedup.txt"
    out.write_text("\n".join(lines) + "\n")


def test_resume_skips_all_finished_cells(results_dir, tmp_path):
    fresh, r1 = run_experiment_cells(EXP_ID, QUICK, jobs=2,
                                     cache_dir=tmp_path)
    t0 = time.perf_counter()
    resumed, r2 = run_experiment_cells(EXP_ID, QUICK, jobs=2,
                                       cache_dir=tmp_path, resume=True)
    resume_s = time.perf_counter() - t0
    assert r2.executed == 0 and r2.resumed == r1.total_cells
    assert resumed.to_payload() == fresh.to_payload()
    with (results_dir / "parallel_speedup.txt").open("a") as fh:
        fh.write(f"  --resume (all {r2.resumed} cells cached): "
                 f"{resume_s:6.2f}s\n")


def test_executor_overhead_vs_sequential(benchmark):
    """pytest-benchmark row: one quick-scale sweep through the executor
    (spawn pool, jobs=1), comparable against the figure benchmarks that
    run the sequential path.

    The cross-check uses fig5a: its code path is hash-seed independent,
    so the executor (which pins PYTHONHASHSEED=0 in its workers) must
    match an in-process sequential run no matter how this pytest process
    was launched.  fig4a's partitioners are exactly the code the pinning
    exists for — see docs/parallel.md.
    """
    series, report = benchmark.pedantic(
        run_experiment_cells, args=(EXP_ID, QUICK),
        kwargs={"jobs": 1}, rounds=1, iterations=1
    )
    assert report.failed == []
    for system in series.systems():
        for x in series.x_values:
            assert series.get(system, x).throughput > 0
    cross, _ = run_experiment_cells("fig5a", QUICK, jobs=1)
    assert cross.to_payload() == run_experiment("fig5a", QUICK).to_payload()
