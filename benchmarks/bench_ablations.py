"""Design-choice ablations (beyond the paper's figures; see DESIGN.md)."""

import pytest

from conftest import save_series
from repro.bench.experiments import run_experiment


@pytest.mark.parametrize("exp_id", ["abl_tsgen", "abl_tsdefer",
                                    "abl_residual_assign", "abl_latency",
                                    "abl_queue_execution",
                                    "abl_cc_matrix"])
def test_ablation(benchmark, exp_id, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=(exp_id, scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    for system in series.systems():
        for x in series.x_values:
            assert series.get(system, x).throughput > 0


def test_isolation_ablation(benchmark, scale, results_dir):
    series = benchmark.pedantic(
        run_experiment, args=("abl_isolation", scale), rounds=1, iterations=1
    )
    save_series(results_dir, series)
    # TSKD's edge is at least as large under SI, where the conflict graph
    # (write-write only) is sparser and almost everything schedules.
    ser_gain = series.improvement("TSKD[0]", "DBCC", "serializable")
    si_gain = series.improvement("TSKD[0]", "DBCC", "snapshot")
    assert si_gain > -10.0
    assert si_gain >= ser_gain - 20.0


def test_fallback_queues_raise_scheduled_pct(scale, results_dir):
    """The fallback-queue extension must schedule at least as much of the
    residual as the literal Algorithm 1."""
    series = run_experiment("abl_tsgen", scale)
    save_series(results_dir, series)
    default = series.get("default", "ycsb").scheduled_pct
    literal = series.get("literal Alg.1", "ycsb").scheduled_pct
    assert default is not None and literal is not None
    assert default >= literal - 0.02
