"""Table 2 — scheduling accuracy (s%) and TsDEFER's queue-retry cut."""

from conftest import save_series
from repro.bench.experiments import run_experiment


def test_table2(benchmark, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=("table2", scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    # A decent share of the residual is scheduled (paper: 20.8% - 69.7%).
    for bench in series.x_values:
        cell = series.get("TSKD[S] w/ defer", bench)
        assert cell.scheduled_pct is not None
        assert cell.scheduled_pct >= 0.15
