"""Figure 5 — TSKD (TsDEFER) on CC-based systems (Section 6.3)."""

import pytest

from conftest import save_series
from repro.bench.experiments import run_experiment

PANELS = ["fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
          "fig5g", "fig5h"]


@pytest.mark.parametrize("exp_id", PANELS)
def test_fig5_panel(benchmark, exp_id, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=(exp_id, scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    for system in series.systems():
        for x in series.x_values:
            assert series.get(system, x).throughput > 0


def test_fig5a_deferment_reduces_retries_on_average(scale, results_dir):
    series = run_experiment("fig5a", scale)
    save_series(results_dir, series)
    cuts = [series.retry_reduction("TSKD[CC]", "DBCC", x)
            for x in series.x_values]
    assert sum(cuts) / len(cuts) > -5.0  # deferment never adds retries net
