"""Section 6.2 'Overhead' — TSgen runtime relative to partitioning time.

The paper reports TsPAR's overheadR (TSgen time / partitioner time) at
3.7% - 4.6% for 100k-transaction workloads; the benchmark reproduces the
measurement and asserts the scheduling pass stays a small fraction.
"""

from conftest import save_series
from repro.bench.experiments import run_experiment


def test_overhead(benchmark, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=("overhead", scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    # Against graph-cutting Schism the scheduling pass must stay a
    # fraction of partitioning time.  (The paper's <5% overheadR is
    # measured against the original heavyweight partitioner
    # implementations; our simplified Strife is itself a single cheap
    # pass, so the Strife ratio is reported but not asserted — see
    # EXPERIMENTS.md.)
    ratio = series.get("Schism", "Schism").throughput  # overheadR stored here
    assert ratio < 100.0, f"TSgen slower than Schism itself: {ratio:.0f}%"
