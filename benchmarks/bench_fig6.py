"""Figure 6 — impact of I/O latency on TsDEFER (Section 6.3)."""

from conftest import save_series
from repro.bench.experiments import run_experiment


def test_fig6(benchmark, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=("fig6", scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    # Raw throughput must degrade as worst-case I/O latency grows.
    l_io_points = [x for x in series.x_values if str(x).startswith("l_IO=")]
    if len(l_io_points) >= 2:
        first = series.get("DBCC", l_io_points[0]).throughput
        last = series.get("DBCC", l_io_points[-1]).throughput
        assert last < first
