"""Figure 4 — TSKD on partitioning-based systems (Section 6.2).

One benchmark per panel; each regenerates the panel's series at bench
scale, persists the numbers, and sanity-checks the cells.
"""

import pytest

from conftest import save_series
from repro.bench.experiments import run_experiment

PANELS = [
    "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
    "fig4g", "fig4h", "fig4i", "fig4j", "fig4k", "fig4l",
]


@pytest.mark.parametrize("exp_id", PANELS)
def test_fig4_panel(benchmark, exp_id, scale, results_dir, exp_kwargs):
    series = benchmark.pedantic(
        run_experiment, args=(exp_id, scale), kwargs=exp_kwargs,
        rounds=1, iterations=1
    )
    save_series(results_dir, series)
    assert series.x_values
    for system in series.systems():
        for x in series.x_values:
            assert series.get(system, x).throughput > 0


def test_fig4a_tskd_beats_partitioners_on_average(scale, results_dir):
    """The headline direction: averaged over the theta sweep, each TSKD
    instance outperforms (or at minimum matches) its partitioner."""
    series = run_experiment("fig4a", scale)
    save_series(results_dir, series)
    for ours, base in (("TSKD[S]", "Strife"), ("TSKD[H]", "Horticulture")):
        gains = [series.improvement(ours, base, x) for x in series.x_values]
        assert sum(gains) / len(gains) > -10.0  # direction with noise floor
