"""Benchmark configuration: scale and result persistence.

Each figure/table benchmark regenerates one paper artifact via
``repro.bench.experiments`` and writes the rendered series to
``benchmarks/results/<exp_id>.txt`` so the numbers behind the figure are
inspectable after a run.  pytest-benchmark times the regeneration itself.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.experiments import Scale

#: Laptop-bench scale: big enough for stable shapes, small enough that
#: the full figure suite finishes in minutes.
BENCH_SCALE = Scale(name="bench", bundle=800, seeds=(0, 1), threads=16,
                    ycsb_records=20_000_000, tpcc_warehouses=32)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    group = parser.getgroup("repro", "parallel experiment execution")
    group.addoption("--jobs", type=int, default=None,
                    help="fan experiment cells out over N worker processes")
    group.addoption("--exp-cache-dir", default=None,
                    help="persist finished cells/workloads here")
    group.addoption("--exp-resume", action="store_true",
                    help="skip cells already present in --exp-cache-dir")


@pytest.fixture(scope="session")
def exp_kwargs(request) -> dict:
    """Parallel-executor kwargs for run_experiment, from the CLI.

    All defaults are inert: a plain ``pytest benchmarks/`` takes the
    sequential path exactly as before (docs/parallel.md guarantees the
    numbers are bit-identical either way).
    """
    return {
        "jobs": request.config.getoption("--jobs"),
        "cache_dir": request.config.getoption("--exp-cache-dir"),
        "resume": request.config.getoption("--exp-resume"),
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> Scale:
    return BENCH_SCALE


def save_series(results_dir: pathlib.Path, series) -> None:
    (results_dir / f"{series.exp_id}.txt").write_text(series.render() + "\n")
