"""Micro-benchmarks of the core components (not paper artifacts).

These time the pieces the per-figure benches exercise end-to-end:
conflict-graph construction, TSgen, the Strife/Schism partitioners, the
simulated engine's event loop, the TsDEFER probe path, and the Zipfian
generator.  Useful for catching performance regressions in the library.
"""

import pytest

from repro.common import Rng, SimConfig, TsDeferConfig, YcsbConfig
from repro.core.progress_table import ProgressTable
from repro.core.tsgen import tsgen
from repro.core.tspar import TsPar
from repro.partition import SchismPartitioner, StrifePartitioner
from repro.sim import MulticoreEngine, warm_up_history
from repro.bench.workloads import YcsbGenerator
from repro.txn.workload import split_round_robin

SIM = SimConfig(num_threads=8)


@pytest.fixture(scope="module")
def workload():
    gen = YcsbGenerator(YcsbConfig(num_records=1_000_000, theta=0.8), seed=3)
    return gen.make_workload(1_000)


@pytest.fixture(scope="module")
def graph(workload):
    g = workload.conflict_graph()
    for t in workload:  # pre-warm the neighbour cache
        g.neighbors(t.tid)
    return g


def test_conflict_graph_build(benchmark, workload):
    def build():
        g = workload.conflict_graph()
        for t in workload:
            g.neighbors(t.tid)
        return g

    benchmark(build)


def test_strife_partition(benchmark, workload, graph):
    benchmark(lambda: StrifePartitioner().partition(workload, 8, graph=graph,
                                                    rng=Rng(0)))


def test_schism_partition(benchmark, workload, graph):
    benchmark(lambda: SchismPartitioner().partition(workload, 8, graph=graph,
                                                    rng=Rng(0)))


def test_tsgen_refinement(benchmark, workload, graph):
    cost = warm_up_history(workload, SIM)
    tspar = TsPar(StrifePartitioner())
    plan = tspar.make_plan(workload, 8, cost, graph, Rng(0))
    benchmark(lambda: tsgen(workload, plan, cost, graph=graph, rng=Rng(1)))


def test_engine_event_loop(benchmark, workload):
    buffers = split_round_robin(list(workload), SIM.num_threads)

    def run():
        return MulticoreEngine(SIM).run([list(b) for b in buffers])

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.counters.committed == len(workload)


def test_tsdefer_probe_path(benchmark, workload):
    cfg = TsDeferConfig()
    table = ProgressTable(8, Rng(2))
    txns = list(workload)[:8]
    for j, t in enumerate(txns):
        table.on_dispatch(j, t)
    benchmark(lambda: table.probe(0, cfg.num_lookups, scope=cfg.lookup_scope))


def test_zipfian_generation(benchmark):
    from repro.common import ZipfianGenerator

    gen = ZipfianGenerator(20_000_000, 0.8, Rng(4))
    benchmark(lambda: gen.sample(1_000))
